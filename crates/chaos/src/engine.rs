//! The chaos engine: interleaves a seeded fault schedule with a
//! seeded workload on the virtual clock, checks invariants after
//! every fault, and finishes with the full repair sequence
//! (restart → heal → resolve in-doubt → reconcile → convergence
//! check).
//!
//! Everything is derived from [`ChaosConfig::seed`]: the fault plan,
//! the workload mix, the gossip traffic. Two runs with the same
//! config produce the same virtual-time trajectory and — with a JSONL
//! exporter attached — byte-identical trace files.

use crate::invariant::{InvariantChecker, InvariantViolation};
use crate::plan::{FaultPlan, FaultStep};
use crate::rng::ChaosRng;
use dedisys_core::{
    Cluster, ClusterBuilder, DeferAll, DetectorKind, HighestVersionWins, LinkFault,
    MinorityWriteHandling, PlaneStats, PrimaryPartitionPolicy, RequestPlane, StatsSnapshot,
    ValidationParallelism,
};
use dedisys_net::{LatencyModel, Router, Topology};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_telemetry::TraceEvent;
use dedisys_types::{NodeId, ObjectId, PriorityClass, Result, SimDuration, TxId, Value};

/// Gossip-fabric base latency (per hop) outside latency spikes.
const GOSSIP_BASE_MICROS: u64 = 500;

/// Configuration of one chaos-soak run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Cluster size (at least 2).
    pub nodes: u32,
    /// Workload operations to run.
    pub ops: u64,
    /// Fault steps to schedule across the run.
    pub faults: usize,
    /// Master seed: fixes plan, workload and gossip traffic.
    pub seed: u64,
    /// Entities created up front as the workload's working set.
    pub item_pool: usize,
    /// How the cluster under test evaluates validation batches. Any
    /// setting must produce the same report, stats and trace — the
    /// parallel-determinism property tests sweep this knob.
    pub parallelism: ValidationParallelism,
    /// Drive membership through the adaptive failure-detection
    /// pipeline: the cluster runs a φ-accrual detector with flap
    /// damping and a weighted-quorum primary policy, and the random
    /// plan draws from the extended fault vocabulary (link flaps,
    /// asymmetric loss, jitter, torn journal writes). Off by default
    /// so classic seeds keep their historical schedules.
    pub detector: bool,
    /// Route the read/write share of the workload through a
    /// [`RequestPlane`]: requests are admitted under token-bucket and
    /// queue-bound control, carry seed-derived priority classes, and
    /// drain interleaved with the fault schedule. The invariant
    /// checker then also asserts request conservation (no admitted
    /// request is lost) and the per-node queue bound after every
    /// fault. Off by default so classic seeds keep their historical
    /// schedules.
    pub workload_plane: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            nodes: 4,
            ops: 300,
            faults: 24,
            seed: 0,
            item_pool: 12,
            parallelism: ValidationParallelism::Serial,
            detector: false,
            workload_plane: false,
        }
    }
}

/// Outcome of a chaos-soak run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The seed the run was derived from.
    pub seed: u64,
    /// Workload operations that succeeded.
    pub ops_ok: u64,
    /// Workload operations that failed (availability, locks, vetoes —
    /// expected under faults).
    pub ops_failed: u64,
    /// Fault steps applied.
    pub faults_applied: u64,
    /// Fault steps skipped (inapplicable when reached).
    pub faults_skipped: u64,
    /// In-doubt transactions resolved by presumed abort.
    pub in_doubt_resolved: u64,
    /// Every invariant violation observed (must be empty).
    pub violations: Vec<InvariantViolation>,
    /// Request-plane counters (all zero unless
    /// [`ChaosConfig::workload_plane`] was set).
    pub plane: PlaneStats,
    /// Final cluster statistics snapshot.
    pub final_stats: StatsSnapshot,
}

impl ChaosReport {
    /// Whether every invariant held throughout the run.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The minimal soak application: one entity class with an integer
/// field, conventional accessors dispatched by the method table.
fn chaos_app() -> AppDescriptor {
    AppDescriptor::new("chaos-soak")
        .with_class(ClassDescriptor::new("Item").with_field("n", Value::Int(0)))
}

/// Drives one seeded chaos run against a dedicated cluster.
pub struct ChaosEngine {
    config: ChaosConfig,
    cluster: Cluster,
    /// Workload RNG — a distinct stream from the plan generator so
    /// adding plan entropy does not shift the workload.
    rng: ChaosRng,
    /// Side-channel gossip fabric for link-loss and latency faults;
    /// mirrors the cluster topology and shares its virtual clock.
    gossip: Router<u64>,
    /// The request plane the read/write workload routes through when
    /// [`ChaosConfig::workload_plane`] is set (idle otherwise).
    plane: RequestPlane,
    items: Vec<ObjectId>,
    created: u64,
    open_prepared: Vec<TxId>,
    ops_ok: u64,
    ops_failed: u64,
    faults_applied: u64,
    faults_skipped: u64,
    in_doubt_resolved: u64,
    violations: Vec<InvariantViolation>,
}

impl ChaosEngine {
    /// Builds the soak cluster and seeds the working set.
    ///
    /// # Errors
    ///
    /// Propagates cluster-construction and seeding failures.
    pub fn new(config: ChaosConfig) -> Result<Self> {
        assert!(config.nodes >= 2, "chaos needs at least two nodes");
        let mut builder = ClusterBuilder::new(config.nodes, chaos_app());
        if config.detector {
            builder = builder.configure(|c| {
                c.membership.detector_enabled = true;
                c.membership.detector = DetectorKind::Adaptive;
                c.membership.seed = config.seed;
                c.membership.primary_policy = PrimaryPartitionPolicy::WeightedQuorum;
                c.membership.minority_writes = MinorityWriteHandling::Degrade;
            });
        }
        let mut cluster = builder.build()?;
        cluster.set_validation_parallelism(config.parallelism);
        let gossip = Router::new(
            Topology::fully_connected(config.nodes),
            LatencyModel::uniform_micros(GOSSIP_BASE_MICROS),
            cluster.clock().clone(),
        );
        Ok(Self {
            rng: ChaosRng::new(config.seed ^ 0xC0FF_EE00_C0FF_EE00),
            gossip,
            plane: RequestPlane::new(),
            cluster,
            items: Vec::new(),
            created: 0,
            open_prepared: Vec::new(),
            ops_ok: 0,
            ops_failed: 0,
            faults_applied: 0,
            faults_skipped: 0,
            in_doubt_resolved: 0,
            violations: Vec::new(),
            config,
        })
    }

    /// The cluster under test — attach telemetry sinks here *before*
    /// [`ChaosEngine::run`] to capture the trace.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Runs the seed-derived random plan to completion.
    ///
    /// # Errors
    ///
    /// Propagates workload-seeding failures; fault application and
    /// workload errors are absorbed into the report.
    pub fn run(mut self) -> Result<ChaosReport> {
        let plan = if self.config.detector {
            FaultPlan::random_adaptive(
                self.config.seed,
                self.config.nodes,
                self.config.ops,
                self.config.faults,
            )
        } else {
            FaultPlan::random(
                self.config.seed,
                self.config.nodes,
                self.config.ops,
                self.config.faults,
            )
        };
        self.run_plan(&plan)
    }

    /// Runs an explicit fault plan to completion.
    ///
    /// # Errors
    ///
    /// Propagates workload-seeding failures.
    pub fn run_plan(mut self, plan: &FaultPlan) -> Result<ChaosReport> {
        self.seed_items()?;
        let mut steps = plan.steps().iter().peekable();
        let mut step_no: u32 = 0;
        for op in 0..self.config.ops {
            while steps.peek().is_some_and(|p| p.at_op <= op) {
                let planned = steps.next().expect("peeked");
                self.apply_step(step_no, &planned.step);
                step_no += 1;
                self.check_invariants();
            }
            self.one_op();
            // Dispatch one queued request per workload op, so plane
            // traffic drains interleaved with faults and new arrivals.
            if self.config.workload_plane {
                self.plane.step(&mut self.cluster);
            }
            self.in_doubt_resolved += self.cluster.resolve_in_doubt() as u64;
            // The workload advanced the virtual clock; let the
            // failure detector process whatever heartbeats landed.
            self.cluster.poll_detector();
        }
        for planned in steps {
            self.apply_step(step_no, &planned.step);
            step_no += 1;
            self.check_invariants();
        }
        self.finish();
        let final_stats = self.cluster.stats();
        Ok(ChaosReport {
            seed: self.config.seed,
            ops_ok: self.ops_ok,
            ops_failed: self.ops_failed,
            faults_applied: self.faults_applied,
            faults_skipped: self.faults_skipped,
            in_doubt_resolved: self.in_doubt_resolved,
            violations: self.violations,
            plane: *self.plane.stats(),
            final_stats,
        })
    }

    /// The post-fault invariant sweep: the running-cluster checks,
    /// plus request accounting when the plane carries the workload.
    fn check_invariants(&mut self) {
        self.violations
            .extend(InvariantChecker::check_running(&self.cluster));
        if self.config.workload_plane {
            self.violations
                .extend(InvariantChecker::check_plane(&self.plane, &self.cluster));
        }
    }

    fn seed_items(&mut self) -> Result<()> {
        for i in 0..self.config.item_pool {
            let node = NodeId((i as u32) % self.config.nodes);
            let id = ObjectId::new("Item", format!("I-{i}"));
            let entity_id = id.clone();
            self.cluster.run_tx(node, move |c, tx| {
                c.create(node, tx, EntityState::for_class(c.app(), &entity_id)?)
            })?;
            self.items.push(id);
        }
        Ok(())
    }

    fn live_nodes(&self) -> Vec<NodeId> {
        self.cluster
            .topology()
            .nodes()
            .filter(|n| !self.cluster.is_crashed(*n))
            .collect()
    }

    fn one_op(&mut self) {
        let live = self.live_nodes();
        if live.is_empty() {
            return;
        }
        let node = *self.rng.pick(&live);
        let roll = self.rng.below(100);
        let result: Result<()> = if roll < 10 {
            // Start an explicit 2PC and leave it hanging in prepared
            // state — a later crash of `node` makes it in-doubt. The
            // transaction outlives the session borrow, so detach it.
            let tx = self.cluster.session(node).detach();
            let id = self.rng.pick(&self.items).clone();
            let value = Value::Int(self.rng.below(1_000) as i64);
            let r = self
                .cluster
                .set_field(node, tx, &id, "n", value)
                .and_then(|()| self.cluster.prepare(tx));
            match r {
                Ok(()) => {
                    self.open_prepared.push(tx);
                    Ok(())
                }
                Err(e) => {
                    let _ = self.cluster.rollback(tx);
                    Err(e)
                }
            }
        } else if roll < 25 && !self.open_prepared.is_empty() {
            // Finish a hanging 2PC: phase 2 commit, or rollback.
            let idx = self.rng.below(self.open_prepared.len() as u64) as usize;
            let tx = self.open_prepared.swap_remove(idx);
            if self.rng.chance(50) {
                self.cluster.commit(tx)
            } else {
                self.cluster.rollback(tx)
            }
        } else if roll < 40 {
            let key = format!("C-{}", self.created);
            self.created += 1;
            let id = ObjectId::new("Item", key);
            let entity_id = id.clone();
            let r = self.cluster.run_tx(node, move |c, tx| {
                c.create(node, tx, EntityState::for_class(c.app(), &entity_id)?)
            });
            if r.is_ok() {
                self.items.push(id);
            }
            r
        } else if roll < 75 {
            let id = self.rng.pick(&self.items).clone();
            let value = Value::Int(self.rng.below(1_000) as i64);
            if self.config.workload_plane {
                self.submit_plane(node, move |mut session| {
                    session.set_field(&id, "n", value)?;
                    session.commit()
                })
            } else {
                self.cluster
                    .run_tx(node, move |c, tx| c.set_field(node, tx, &id, "n", value))
            }
        } else {
            let id = self.rng.pick(&self.items).clone();
            if self.config.workload_plane {
                self.submit_plane(node, move |mut session| {
                    session.get_field(&id, "n").map(|_| ())
                })
            } else {
                self.cluster
                    .run_tx(node, move |c, tx| c.get_field(node, tx, &id, "n"))
                    .map(|_| ())
            }
        };
        match result {
            Ok(()) => self.ops_ok += 1,
            Err(_) => self.ops_failed += 1,
        }
    }

    /// Submits one workload closure through the request plane under a
    /// seed-derived priority class. Admission errors (empty bucket,
    /// full queue, non-primary refusal) surface as failed ops; the
    /// execution outcome lands in the plane counters when the request
    /// is dispatched later.
    fn submit_plane(
        &mut self,
        node: NodeId,
        work: impl for<'a> FnOnce(dedisys_core::Session<'a>) -> Result<()> + 'static,
    ) -> Result<()> {
        let class_roll = self.rng.below(100);
        let class = if class_roll < 15 {
            PriorityClass::Critical
        } else if class_roll < 70 {
            PriorityClass::Normal
        } else {
            PriorityClass::Background
        };
        self.plane
            .submit(&mut self.cluster, node, class, work)
            .map(|_| ())
    }

    fn apply_step(&mut self, step_no: u32, step: &FaultStep) {
        let label = step.to_string();
        self.cluster.telemetry().emit(|| TraceEvent::ChaosFault {
            step: step_no,
            fault: label.clone(),
        });
        let applied = match step {
            FaultStep::Crash(node) => {
                // Never take down the last live node.
                self.live_nodes().len() > 1 && self.cluster.crash(*node).is_ok()
            }
            FaultStep::Restart(node) => self.cluster.restart(*node).is_ok(),
            FaultStep::Partition(groups) => self.cluster.partition(groups).is_ok(),
            FaultStep::Heal => {
                self.cluster.heal();
                true
            }
            FaultStep::LinkLossBurst {
                per_mille,
                messages,
            } => {
                self.gossip_burst(*per_mille, None, *messages);
                true
            }
            FaultStep::LatencySpike { micros, messages } => {
                self.gossip_burst(0, Some(*micros), *messages);
                true
            }
            FaultStep::WriteFaultWindow { node, failures } => {
                self.cluster.inject_write_fault(*node, *failures);
                true
            }
            FaultStep::ReplicaLag { node, updates } => {
                self.cluster.inject_replica_lag(*node, *updates);
                true
            }
            FaultStep::LinkJitter { micros } => {
                self.cluster.set_default_link_jitter(*micros).is_ok()
            }
            FaultStep::LinkFlap {
                node,
                flaps,
                period_millis,
            } => self.link_flap(*node, *flaps, *period_millis),
            FaultStep::AsymmetricLoss {
                from,
                to,
                per_mille,
            } => self
                .cluster
                .set_link_fault(
                    *from,
                    *to,
                    LinkFault {
                        loss_per_mille: *per_mille,
                        ..LinkFault::default()
                    },
                )
                .is_ok(),
            FaultStep::WalTornWrite { node } => {
                self.live_nodes().len() > 1
                    && !self.cluster.is_crashed(*node)
                    && self.cluster.corrupt_journal_tail(*node, 1).is_ok()
                    && self.cluster.crash(*node).is_ok()
            }
        };
        if applied {
            self.faults_applied += 1;
        } else {
            self.faults_skipped += 1;
        }
    }

    /// Severs and restores `node`'s physical links `flaps` times,
    /// advancing the detector through each half-cycle — the
    /// stabilizer's flap damping is what keeps this from translating
    /// into `2 × flaps` installed views.
    fn link_flap(&mut self, node: NodeId, flaps: u32, period_millis: u64) -> bool {
        if !self.cluster.detector_enabled() || self.cluster.is_crashed(node) {
            return false;
        }
        let others: Vec<NodeId> = self
            .cluster
            .topology()
            .nodes()
            .filter(|n| *n != node)
            .collect();
        let period = SimDuration::from_millis(period_millis);
        for _ in 0..flaps {
            if self
                .cluster
                .drop_links(&[vec![node], others.clone()])
                .is_err()
            {
                return false;
            }
            self.cluster.run_detector_for(period);
            if self.cluster.heal_links().is_err() {
                return false;
            }
            self.cluster.run_detector_for(period);
        }
        true
    }

    /// Exchanges `messages` gossip heartbeats under a loss window or a
    /// latency spike, drains the fabric, and checks message
    /// conservation.
    fn gossip_burst(&mut self, per_mille: u16, spike_micros: Option<u64>, messages: u32) {
        self.gossip.set_topology(self.cluster.topology().clone());
        self.gossip.latency_mut().set_loss_per_mille(per_mille);
        if let Some(us) = spike_micros {
            self.set_gossip_latency(SimDuration::from_micros(us));
        }
        let nodes = self.config.nodes as u64;
        for i in 0..messages {
            let from = NodeId(self.rng.below(nodes) as u32);
            let to = NodeId(((u64::from(from.0) + 1 + self.rng.below(nodes - 1)) % nodes) as u32);
            let _ = self.gossip.send(from, to, u64::from(i));
        }
        let _ = self.gossip.deliver_all();
        // Close the window again.
        self.gossip.latency_mut().set_loss_per_mille(0);
        if spike_micros.is_some() {
            self.set_gossip_latency(SimDuration::from_micros(GOSSIP_BASE_MICROS));
        }
        self.violations.extend(InvariantChecker::check_net(
            self.gossip.stats(),
            self.gossip.in_flight(),
        ));
    }

    fn set_gossip_latency(&mut self, latency: SimDuration) {
        for a in 0..self.config.nodes {
            for b in (a + 1)..self.config.nodes {
                self.gossip
                    .latency_mut()
                    .set_link(NodeId(a), NodeId(b), latency);
            }
        }
    }

    /// The final repair sequence: drain hanging 2PC transactions,
    /// restart every crashed node, heal, time out any remaining
    /// in-doubt transactions, reconcile, and check convergence.
    fn finish(&mut self) {
        for tx in std::mem::take(&mut self.open_prepared) {
            if self.cluster.tx_is_open(tx) {
                match self.cluster.commit(tx) {
                    Ok(()) => self.ops_ok += 1,
                    Err(_) => self.ops_failed += 1,
                }
            }
        }
        let crashed: Vec<NodeId> = self.cluster.crashed_nodes().collect();
        for node in crashed {
            let _ = self.cluster.restart(node);
        }
        self.cluster.heal();
        if self.cluster.detector_enabled() {
            // Give the pipeline time to observe the healed fabric and
            // decay any accumulated flap penalties, then insist on
            // quiescence: zero standing suspicions, one partition.
            let _ = self.cluster.set_default_link_jitter(0);
            self.cluster.run_detector_for(SimDuration::from_secs(2));
            let mut rounds = 0;
            while rounds < 120
                && (self.cluster.standing_suspicions() > 0 || !self.cluster.topology().is_healthy())
            {
                self.cluster.run_detector_for(SimDuration::from_secs(1));
                rounds += 1;
            }
        }
        // With every node restarted and the fabric healed, drain the
        // plane: whatever survived admission must now complete, shed
        // or miss its deadline — nothing may simply vanish.
        if self.config.workload_plane {
            let report = self.plane.run_until_idle(&mut self.cluster);
            if report.queued != 0 {
                self.violations.push(InvariantViolation {
                    invariant: "plane_drained",
                    detail: format!("{} requests still queued after repair", report.queued),
                });
            }
            self.violations
                .extend(InvariantChecker::check_plane(&self.plane, &self.cluster));
        }
        let timeout = self.cluster.costs().in_doubt_timeout;
        self.cluster.clock().advance(timeout);
        self.in_doubt_resolved += self.cluster.resolve_in_doubt() as u64;
        if self.cluster.needs_reconciliation() {
            let mut replica_handler = HighestVersionWins;
            let mut constraint_handler = DeferAll;
            let _ = self
                .cluster
                .reconcile(&mut replica_handler, &mut constraint_handler);
        }
        self.violations
            .extend(InvariantChecker::check_converged(&self.cluster));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultStep;

    fn run_seed(seed: u64) -> ChaosReport {
        let engine = ChaosEngine::new(ChaosConfig {
            seed,
            ops: 200,
            faults: 16,
            ..ChaosConfig::default()
        })
        .expect("engine");
        engine.run().expect("run")
    }

    #[test]
    fn fixed_seed_is_reproducible() {
        let a = run_seed(7);
        let b = run_seed(7);
        assert_eq!(a.ops_ok, b.ops_ok);
        assert_eq!(a.ops_failed, b.ops_failed);
        assert_eq!(a.faults_applied, b.faults_applied);
        assert_eq!(a.final_stats.now_ns, b.final_stats.now_ns);
        assert_eq!(a.final_stats.events_emitted, b.final_stats.events_emitted);
    }

    #[test]
    fn random_schedules_keep_invariants() {
        for seed in 0..20 {
            let report = run_seed(seed);
            assert!(
                report.clean(),
                "seed {seed} violated invariants: {:?}",
                report.violations
            );
        }
    }

    fn run_detector_seed(seed: u64) -> ChaosReport {
        let engine = ChaosEngine::new(ChaosConfig {
            seed,
            ops: 150,
            faults: 12,
            detector: true,
            ..ChaosConfig::default()
        })
        .expect("engine");
        engine.run().expect("run")
    }

    #[test]
    fn detector_runs_are_reproducible() {
        let a = run_detector_seed(11);
        let b = run_detector_seed(11);
        assert_eq!(a.ops_ok, b.ops_ok);
        assert_eq!(a.ops_failed, b.ops_failed);
        assert_eq!(a.faults_applied, b.faults_applied);
        assert_eq!(a.final_stats.now_ns, b.final_stats.now_ns);
        assert_eq!(a.final_stats.events_emitted, b.final_stats.events_emitted);
    }

    #[test]
    fn detector_schedules_keep_invariants() {
        for seed in 0..10 {
            let report = run_detector_seed(seed);
            assert!(
                report.clean(),
                "seed {seed} violated invariants: {:?}",
                report.violations
            );
        }
    }

    fn run_plane_seed(seed: u64, ops: u64, faults: usize) -> ChaosReport {
        let engine = ChaosEngine::new(ChaosConfig {
            seed,
            ops,
            faults,
            workload_plane: true,
            ..ChaosConfig::default()
        })
        .expect("engine");
        engine.run().expect("run")
    }

    #[test]
    fn plane_runs_are_reproducible() {
        let a = run_plane_seed(13, 200, 16);
        let b = run_plane_seed(13, 200, 16);
        assert_eq!(a.ops_ok, b.ops_ok);
        assert_eq!(a.ops_failed, b.ops_failed);
        assert_eq!(a.plane, b.plane);
        assert_eq!(a.final_stats.now_ns, b.final_stats.now_ns);
        assert_eq!(a.final_stats.events_emitted, b.final_stats.events_emitted);
    }

    #[test]
    fn plane_workload_conserves_requests_across_seeds() {
        // The issue-level contract: request conservation (no admitted
        // request lost) and the queue bound hold across a wide seed
        // sweep, checked after every fault and after the final drain.
        for seed in 0..200 {
            let report = run_plane_seed(seed, 60, 6);
            assert!(
                report.clean(),
                "seed {seed} violated invariants: {:?}",
                report.violations
            );
            let t = report.plane;
            let total = t.critical.offered + t.normal.offered + t.background.offered;
            assert!(total > 0, "seed {seed} routed nothing through the plane");
        }
    }

    #[test]
    fn torn_journal_write_recovers_and_converges() {
        let plan = FaultPlan::new()
            .at(60, FaultStep::WalTornWrite { node: NodeId(1) })
            .at(120, FaultStep::Restart(NodeId(1)));
        let engine = ChaosEngine::new(ChaosConfig {
            seed: 5,
            ops: 200,
            ..ChaosConfig::default()
        })
        .expect("engine");
        let report = engine.run_plan(&plan).expect("run");
        assert!(report.clean(), "violations: {:?}", report.violations);
        assert_eq!(report.faults_applied, 2);
    }

    #[test]
    fn explicit_crash_during_prepare_resolves_in_doubt() {
        // Hand-written schedule: crash node 1 early and often enough
        // that a hanging prepared transaction coordinated there goes
        // in-doubt, then restart and let the run finish.
        let plan = FaultPlan::new()
            .at(40, FaultStep::Crash(NodeId(1)))
            .at(90, FaultStep::Restart(NodeId(1)))
            .at(120, FaultStep::Crash(NodeId(2)))
            .at(160, FaultStep::Heal);
        let engine = ChaosEngine::new(ChaosConfig {
            seed: 3,
            ops: 200,
            ..ChaosConfig::default()
        })
        .expect("engine");
        let report = engine.run_plan(&plan).expect("run");
        assert!(report.clean(), "violations: {:?}", report.violations);
    }
}
