//! Safety invariants checked after every chaos step.
//!
//! The checker never mutates the cluster: it reads counters and
//! registries and reports violations as data, so a soak run can
//! aggregate them and a test can assert the list is empty.

use dedisys_core::{Cluster, RequestPlane};
use dedisys_net::NetStats;
use dedisys_types::SystemMode;

/// One violated invariant, with a human-readable detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Stable name of the invariant (for aggregation).
    pub invariant: &'static str,
    /// What exactly went wrong.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Stateless invariant checks over a [`Cluster`] (and the chaos
/// engine's gossip fabric).
#[derive(Debug, Clone, Copy, Default)]
pub struct InvariantChecker;

impl InvariantChecker {
    /// Invariants that must hold at *every* point of a run, however
    /// degraded the system is.
    pub fn check_running(cluster: &Cluster) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        let stats = cluster.stats();

        // Transaction conservation: every begun transaction is
        // committed, rolled back, or still open (active/prepared).
        let open = cluster.open_tx_count() as u64;
        if stats.tx.begun != stats.tx.committed + stats.tx.rolled_back + open {
            out.push(InvariantViolation {
                invariant: "tx_conservation",
                detail: format!(
                    "begun={} != committed={} + rolled_back={} + open={open}",
                    stats.tx.begun, stats.tx.committed, stats.tx.rolled_back
                ),
            });
        }

        // No orphaned locks: every lock holder is still open.
        for (object, tx) in cluster.held_locks() {
            if !cluster.tx_is_open(tx) {
                out.push(InvariantViolation {
                    invariant: "no_orphaned_locks",
                    detail: format!("lock on {object} held by terminated {tx}"),
                });
            }
        }

        // In-doubt sanity: an in-doubt transaction is still prepared
        // and its coordinator really is down.
        for (tx, info) in cluster.in_doubt_txs() {
            if !cluster.tx_is_open(tx) {
                out.push(InvariantViolation {
                    invariant: "in_doubt_open",
                    detail: format!("in-doubt {tx} is not open"),
                });
            }
            if !cluster.is_crashed(info.coordinator) {
                out.push(InvariantViolation {
                    invariant: "in_doubt_coordinator_down",
                    detail: format!("in-doubt {tx} names live coordinator {}", info.coordinator),
                });
            }
        }

        // Crashed nodes are topology singletons and force degradation.
        for node in cluster.crashed_nodes() {
            if cluster.topology().partition_of(node).len() != 1 {
                out.push(InvariantViolation {
                    invariant: "crashed_isolated",
                    detail: format!("crashed {node} is reachable from other nodes"),
                });
            }
        }
        if cluster.crashed_nodes().next().is_some() && cluster.mode() == SystemMode::Healthy {
            out.push(InvariantViolation {
                invariant: "crashed_implies_degraded",
                detail: "mode is healthy while nodes are crashed".into(),
            });
        }

        // §5.5.2: under a quorum-based primary policy at most one
        // partition may accept primary-mode writes per topology epoch.
        // The cluster witnesses every admitted primary write; a second
        // member-set at the same epoch is a split-brain.
        if cluster.primary_conflicts() > 0 {
            out.push(InvariantViolation {
                invariant: "primary_exclusivity",
                detail: format!(
                    "{} primary-mode writes admitted by a second partition",
                    cluster.primary_conflicts()
                ),
            });
        }
        out
    }

    /// Request-accounting invariants on the request plane: no admitted
    /// request vanishes (conservation: `offered == admitted + rejected`
    /// and `admitted == completed + shed + deadline_missed + queued`)
    /// and every per-node queue respects the configured bound.
    pub fn check_plane(plane: &RequestPlane, cluster: &Cluster) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        if !plane.conserves() {
            let t = plane.stats().total();
            out.push(InvariantViolation {
                invariant: "plane_conservation",
                detail: format!(
                    "offered={} admitted={} rejected={} completed={} shed={} \
                     deadline_missed={} queued={}",
                    t.offered,
                    t.admitted,
                    t.rejected,
                    t.completed,
                    t.shed,
                    t.deadline_missed,
                    plane.queued_total()
                ),
            });
        }
        let bound = cluster.config().plane.queue_capacity;
        for node in cluster.topology().nodes() {
            let depth = plane.queue_depth(node);
            if depth > bound {
                out.push(InvariantViolation {
                    invariant: "plane_queue_bound",
                    detail: format!("{node} queues {depth} requests over the bound {bound}"),
                });
            }
        }
        out
    }

    /// Message-accounting invariants on the gossip fabric: sent
    /// messages are conserved and the in-flight gauge matches the
    /// router queue.
    pub fn check_net(stats: &NetStats, queued: usize) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        if !stats.is_conserved() {
            out.push(InvariantViolation {
                invariant: "net_conservation",
                detail: format!(
                    "sent={} < delivered={} + dropped={} + unreachable={}",
                    stats.sent, stats.delivered, stats.dropped, stats.unreachable
                ),
            });
        }
        if stats.in_flight() != queued as u64 {
            out.push(InvariantViolation {
                invariant: "net_in_flight_gauge",
                detail: format!(
                    "in_flight()={} but router queues {queued}",
                    stats.in_flight()
                ),
            });
        }
        out
    }

    /// Invariants that must hold after the final repair sequence
    /// (restart every crashed node, heal, resolve in-doubt,
    /// reconcile): the cluster is quiescent and replicas converged.
    pub fn check_converged(cluster: &Cluster) -> Vec<InvariantViolation> {
        let mut out = Self::check_running(cluster);
        if cluster.crashed_nodes().next().is_some() {
            out.push(InvariantViolation {
                invariant: "all_restarted",
                detail: "crashed nodes remain after the repair sequence".into(),
            });
        }
        if !cluster.topology().is_healthy() {
            out.push(InvariantViolation {
                invariant: "topology_healthy",
                detail: format!("topology still split: {}", cluster.topology()),
            });
        }
        if cluster.needs_reconciliation() {
            out.push(InvariantViolation {
                invariant: "reconciled",
                detail: "threats or degraded writes remain after reconcile".into(),
            });
        }
        // With the failure-detection pipeline enabled, a healed and
        // quiescent cluster must carry no standing suspicions and must
        // have converged back to the healthy mode.
        if cluster.detector_enabled() {
            if cluster.standing_suspicions() != 0 {
                out.push(InvariantViolation {
                    invariant: "suspicions_cleared",
                    detail: format!(
                        "{} standing suspicions after heal + quiescence",
                        cluster.standing_suspicions()
                    ),
                });
            }
            if cluster.mode() != SystemMode::Healthy {
                out.push(InvariantViolation {
                    invariant: "mode_healthy",
                    detail: format!("mode is {:?} after the repair sequence", cluster.mode()),
                });
            }
        }
        if cluster.in_doubt_count() != 0 {
            out.push(InvariantViolation {
                invariant: "in_doubt_drained",
                detail: format!("{} transactions still in doubt", cluster.in_doubt_count()),
            });
        }
        if cluster.open_tx_count() != 0 {
            out.push(InvariantViolation {
                invariant: "tx_drained",
                detail: format!("{} transactions still open", cluster.open_tx_count()),
            });
        }
        if !cluster.held_locks().is_empty() {
            out.push(InvariantViolation {
                invariant: "locks_drained",
                detail: format!("{} locks still held", cluster.held_locks().len()),
            });
        }
        // Replica convergence: every node stores the same committed
        // objects with the same state.
        let nodes: Vec<_> = cluster.topology().nodes().collect();
        if let Some((&first, rest)) = nodes.split_first() {
            let reference = cluster.committed_ids_on(first);
            for &node in rest {
                let ids = cluster.committed_ids_on(node);
                if ids != reference {
                    out.push(InvariantViolation {
                        invariant: "replica_convergence",
                        detail: format!(
                            "{node} stores {} objects, {first} stores {}",
                            ids.len(),
                            reference.len()
                        ),
                    });
                    continue;
                }
                for id in &reference {
                    let a = cluster.entity_on(first, id).and_then(|e| e.to_json().ok());
                    let b = cluster.entity_on(node, id).and_then(|e| e.to_json().ok());
                    if a != b {
                        out.push(InvariantViolation {
                            invariant: "replica_convergence",
                            detail: format!("{id} diverges between {first} and {node}"),
                        });
                    }
                }
            }
        }
        out
    }
}
