//! Seeded fault schedules: what goes wrong, and when.
//!
//! A [`FaultPlan`] is a list of [`FaultStep`]s pinned to workload
//! operation indices — "after op 17, crash node 2". Plans are either
//! written out explicitly (the DSL: [`FaultPlan::new`] + [`FaultPlan::at`])
//! or generated reproducibly from a seed ([`FaultPlan::random`]): equal
//! seeds yield equal schedules, so a failing soak run is replayed
//! exactly by its seed.

use crate::rng::ChaosRng;
use dedisys_types::NodeId;
use std::collections::BTreeSet;
use std::fmt;

/// One injectable fault (or repair) action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultStep {
    /// Crash a node: volatile state lost, journal kept, topology exit.
    Crash(NodeId),
    /// Restart a crashed node: journal replay + GMS rejoin.
    Restart(NodeId),
    /// Split the live nodes into the given groups.
    Partition(Vec<Vec<NodeId>>),
    /// Repair all connectivity failures (crashed nodes stay down).
    Heal,
    /// A window of probabilistic message loss on the gossip fabric:
    /// `messages` heartbeats are exchanged while links drop
    /// `per_mille`‰ of traffic.
    LinkLossBurst {
        /// Loss rate during the burst (0–1000).
        per_mille: u16,
        /// Heartbeat messages exchanged during the burst.
        messages: u32,
    },
    /// A latency spike on the gossip fabric: `messages` heartbeats are
    /// exchanged while every link runs at `micros` µs.
    LatencySpike {
        /// Per-hop latency during the spike, in microseconds.
        micros: u64,
        /// Heartbeat messages exchanged during the spike.
        messages: u32,
    },
    /// The next `failures` replica installs on `node` fail (store
    /// write-failure window) — exercises ship retry/backoff.
    WriteFaultWindow {
        /// The faulty backup.
        node: NodeId,
        /// Consecutive install failures to inject.
        failures: u32,
    },
    /// `node` lags behind the next `updates` propagated updates.
    ReplicaLag {
        /// The lagging backup.
        node: NodeId,
        /// Updates the backup misses.
        updates: u32,
    },
}

impl fmt::Display for FaultStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultStep::Crash(n) => write!(f, "crash({n})"),
            FaultStep::Restart(n) => write!(f, "restart({n})"),
            FaultStep::Partition(groups) => {
                write!(f, "partition(")?;
                for (i, g) in groups.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    for (j, n) in g.iter().enumerate() {
                        if j > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{n}")?;
                    }
                }
                write!(f, ")")
            }
            FaultStep::Heal => write!(f, "heal"),
            FaultStep::LinkLossBurst {
                per_mille,
                messages,
            } => write!(f, "link_loss({per_mille}‰,{messages}msg)"),
            FaultStep::LatencySpike { micros, messages } => {
                write!(f, "latency_spike({micros}us,{messages}msg)")
            }
            FaultStep::WriteFaultWindow { node, failures } => {
                write!(f, "write_fault({node},{failures})")
            }
            FaultStep::ReplicaLag { node, updates } => {
                write!(f, "replica_lag({node},{updates})")
            }
        }
    }
}

/// A fault step scheduled at a workload-operation index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedFault {
    /// The step fires *before* the workload op with this index.
    pub at_op: u64,
    /// The fault to inject.
    pub step: FaultStep,
}

/// A deterministic fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    steps: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan (the DSL entry point).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `step` before workload op `at_op` (builder style).
    #[must_use]
    pub fn at(mut self, at_op: u64, step: FaultStep) -> Self {
        self.steps.push(PlannedFault { at_op, step });
        self.steps.sort_by_key(|p| p.at_op);
        self
    }

    /// The scheduled steps, sorted by op index (stable for ties).
    pub fn steps(&self) -> &[PlannedFault] {
        &self.steps
    }

    /// Number of scheduled steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Generates a reproducible random plan: `faults` steps spread
    /// over `ops` workload operations against `nodes` nodes. The
    /// generator tracks which nodes its own schedule has crashed so
    /// restarts target crashed nodes, crashes target live ones, and at
    /// least one node always survives.
    pub fn random(seed: u64, nodes: u32, ops: u64, faults: usize) -> Self {
        let mut rng = ChaosRng::new(seed);
        let mut crashed: BTreeSet<NodeId> = BTreeSet::new();
        let mut steps = Vec::with_capacity(faults);
        let mut indices: Vec<u64> = (0..faults).map(|_| rng.below(ops.max(1))).collect();
        indices.sort_unstable();
        for at_op in indices {
            let live: Vec<NodeId> = (0..nodes)
                .map(NodeId)
                .filter(|n| !crashed.contains(n))
                .collect();
            let step = match rng.below(100) {
                // Crash a live node (keep at least one survivor).
                0..=19 if live.len() > 1 => {
                    let victim = *rng.pick(&live);
                    crashed.insert(victim);
                    FaultStep::Crash(victim)
                }
                // Restart a crashed node.
                20..=37 if !crashed.is_empty() => {
                    let back: Vec<NodeId> = crashed.iter().copied().collect();
                    let node = *rng.pick(&back);
                    crashed.remove(&node);
                    FaultStep::Restart(node)
                }
                // Split the live nodes into two groups.
                38..=52 if live.len() >= 2 => {
                    let mut a = Vec::new();
                    let mut b = Vec::new();
                    for &n in &live {
                        if rng.chance(50) {
                            a.push(n);
                        } else {
                            b.push(n);
                        }
                    }
                    if a.is_empty() {
                        a.push(b.pop().expect("live >= 2"));
                    }
                    if b.is_empty() {
                        b.push(a.pop().expect("live >= 2"));
                    }
                    FaultStep::Partition(vec![a, b])
                }
                53..=64 => FaultStep::Heal,
                65..=74 => FaultStep::LinkLossBurst {
                    per_mille: 100 + rng.below(300) as u16,
                    messages: 20 + rng.below(40) as u32,
                },
                75..=84 => FaultStep::LatencySpike {
                    micros: 1_000 + rng.below(4_000),
                    messages: 10 + rng.below(20) as u32,
                },
                85..=92 => FaultStep::WriteFaultWindow {
                    node: NodeId(rng.below(u64::from(nodes)) as u32),
                    failures: 1 + rng.below(5) as u32,
                },
                _ => FaultStep::ReplicaLag {
                    node: NodeId(rng.below(u64::from(nodes)) as u32),
                    updates: 1 + rng.below(3) as u32,
                },
            };
            steps.push(PlannedFault { at_op, step });
        }
        Self { steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsl_orders_steps_by_op() {
        let plan = FaultPlan::new()
            .at(20, FaultStep::Heal)
            .at(5, FaultStep::Crash(NodeId(1)))
            .at(12, FaultStep::Restart(NodeId(1)));
        let ops: Vec<u64> = plan.steps().iter().map(|p| p.at_op).collect();
        assert_eq!(ops, vec![5, 12, 20]);
    }

    #[test]
    fn random_plans_are_seed_reproducible() {
        let a = FaultPlan::random(99, 4, 200, 24);
        let b = FaultPlan::random(99, 4, 200, 24);
        assert_eq!(a, b);
        let c = FaultPlan::random(100, 4, 200, 24);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn random_plans_never_crash_the_last_node() {
        for seed in 0..50 {
            let plan = FaultPlan::random(seed, 3, 100, 30);
            let mut crashed = 0u32;
            for p in plan.steps() {
                match &p.step {
                    FaultStep::Crash(_) => {
                        crashed += 1;
                        assert!(crashed < 3, "seed {seed} crashed every node");
                    }
                    FaultStep::Restart(_) => crashed -= 1,
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn display_is_compact() {
        let s = FaultStep::Partition(vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]]);
        assert_eq!(s.to_string(), "partition(n0,n1|n2)");
        assert_eq!(FaultStep::Crash(NodeId(7)).to_string(), "crash(n7)");
    }
}
