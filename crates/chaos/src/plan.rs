//! Seeded fault schedules: what goes wrong, and when.
//!
//! A [`FaultPlan`] is a list of [`FaultStep`]s pinned to workload
//! operation indices — "after op 17, crash node 2". Plans are either
//! written out explicitly (the DSL: [`FaultPlan::new`] + [`FaultPlan::at`])
//! or generated reproducibly from a seed ([`FaultPlan::random`]): equal
//! seeds yield equal schedules, so a failing soak run is replayed
//! exactly by its seed.

use crate::rng::ChaosRng;
use dedisys_types::NodeId;
use std::collections::BTreeSet;
use std::fmt;

/// One injectable fault (or repair) action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultStep {
    /// Crash a node: volatile state lost, journal kept, topology exit.
    Crash(NodeId),
    /// Restart a crashed node: journal replay + GMS rejoin.
    Restart(NodeId),
    /// Split the live nodes into the given groups.
    Partition(Vec<Vec<NodeId>>),
    /// Repair all connectivity failures (crashed nodes stay down).
    Heal,
    /// A window of probabilistic message loss on the gossip fabric:
    /// `messages` heartbeats are exchanged while links drop
    /// `per_mille`‰ of traffic.
    LinkLossBurst {
        /// Loss rate during the burst (0–1000).
        per_mille: u16,
        /// Heartbeat messages exchanged during the burst.
        messages: u32,
    },
    /// A latency spike on the gossip fabric: `messages` heartbeats are
    /// exchanged while every link runs at `micros` µs.
    LatencySpike {
        /// Per-hop latency during the spike, in microseconds.
        micros: u64,
        /// Heartbeat messages exchanged during the spike.
        messages: u32,
    },
    /// The next `failures` replica installs on `node` fail (store
    /// write-failure window) — exercises ship retry/backoff.
    WriteFaultWindow {
        /// The faulty backup.
        node: NodeId,
        /// Consecutive install failures to inject.
        failures: u32,
    },
    /// `node` lags behind the next `updates` propagated updates.
    ReplicaLag {
        /// The lagging backup.
        node: NodeId,
        /// Updates the backup misses.
        updates: u32,
    },
    /// A standing jitter floor on the failure-detector fabric: every
    /// heartbeat is delayed by a deterministic extra in
    /// `0..=micros` µs. Requires the detector pipeline.
    LinkJitter {
        /// Maximum extra heartbeat delay, in microseconds.
        micros: u64,
    },
    /// Repeatedly severs and restores `node`'s physical links, letting
    /// the detector observe every transition — the stabilizer's flap
    /// damping must absorb most of them. Requires the detector
    /// pipeline.
    LinkFlap {
        /// The flapping node.
        node: NodeId,
        /// Down/up cycles.
        flaps: u32,
        /// Virtual time spent in each half-cycle, in milliseconds.
        period_millis: u64,
    },
    /// One-directional heartbeat loss `from → to` while the reverse
    /// direction keeps delivering — the classic asymmetric-failure
    /// detector trap. Requires the detector pipeline.
    AsymmetricLoss {
        /// Sender whose heartbeats are dropped.
        from: NodeId,
        /// Receiver that stops hearing `from`.
        to: NodeId,
        /// Loss rate on the faulty direction (0–1000).
        per_mille: u16,
    },
    /// Tears `node`'s last journal write (checksum corruption) and
    /// crashes it — recovery must truncate the torn tail and
    /// reconciliation must resync the lost state.
    WalTornWrite {
        /// The node whose journal tail is torn.
        node: NodeId,
    },
}

impl fmt::Display for FaultStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultStep::Crash(n) => write!(f, "crash({n})"),
            FaultStep::Restart(n) => write!(f, "restart({n})"),
            FaultStep::Partition(groups) => {
                write!(f, "partition(")?;
                for (i, g) in groups.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    for (j, n) in g.iter().enumerate() {
                        if j > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{n}")?;
                    }
                }
                write!(f, ")")
            }
            FaultStep::Heal => write!(f, "heal"),
            FaultStep::LinkLossBurst {
                per_mille,
                messages,
            } => write!(f, "link_loss({per_mille}‰,{messages}msg)"),
            FaultStep::LatencySpike { micros, messages } => {
                write!(f, "latency_spike({micros}us,{messages}msg)")
            }
            FaultStep::WriteFaultWindow { node, failures } => {
                write!(f, "write_fault({node},{failures})")
            }
            FaultStep::ReplicaLag { node, updates } => {
                write!(f, "replica_lag({node},{updates})")
            }
            FaultStep::LinkJitter { micros } => write!(f, "link_jitter({micros}us)"),
            FaultStep::LinkFlap {
                node,
                flaps,
                period_millis,
            } => write!(f, "link_flap({node},{flaps}x{period_millis}ms)"),
            FaultStep::AsymmetricLoss {
                from,
                to,
                per_mille,
            } => write!(f, "asym_loss({from}->{to},{per_mille}‰)"),
            FaultStep::WalTornWrite { node } => write!(f, "wal_torn({node})"),
        }
    }
}

/// A fault step scheduled at a workload-operation index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedFault {
    /// The step fires *before* the workload op with this index.
    pub at_op: u64,
    /// The fault to inject.
    pub step: FaultStep,
}

/// A deterministic fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    steps: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan (the DSL entry point).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `step` before workload op `at_op` (builder style).
    #[must_use]
    pub fn at(mut self, at_op: u64, step: FaultStep) -> Self {
        self.steps.push(PlannedFault { at_op, step });
        self.steps.sort_by_key(|p| p.at_op);
        self
    }

    /// The scheduled steps, sorted by op index (stable for ties).
    pub fn steps(&self) -> &[PlannedFault] {
        &self.steps
    }

    /// Number of scheduled steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Generates a reproducible random plan: `faults` steps spread
    /// over `ops` workload operations against `nodes` nodes. The
    /// generator tracks which nodes its own schedule has crashed so
    /// restarts target crashed nodes, crashes target live ones, and at
    /// least one node always survives.
    pub fn random(seed: u64, nodes: u32, ops: u64, faults: usize) -> Self {
        let mut rng = ChaosRng::new(seed);
        let mut crashed: BTreeSet<NodeId> = BTreeSet::new();
        let mut steps = Vec::with_capacity(faults);
        let mut indices: Vec<u64> = (0..faults).map(|_| rng.below(ops.max(1))).collect();
        indices.sort_unstable();
        for at_op in indices {
            let live: Vec<NodeId> = (0..nodes)
                .map(NodeId)
                .filter(|n| !crashed.contains(n))
                .collect();
            let step = match rng.below(100) {
                // Crash a live node (keep at least one survivor).
                0..=19 if live.len() > 1 => {
                    let victim = *rng.pick(&live);
                    crashed.insert(victim);
                    FaultStep::Crash(victim)
                }
                // Restart a crashed node.
                20..=37 if !crashed.is_empty() => {
                    let back: Vec<NodeId> = crashed.iter().copied().collect();
                    let node = *rng.pick(&back);
                    crashed.remove(&node);
                    FaultStep::Restart(node)
                }
                // Split the live nodes into two groups.
                38..=52 if live.len() >= 2 => {
                    let mut a = Vec::new();
                    let mut b = Vec::new();
                    for &n in &live {
                        if rng.chance(50) {
                            a.push(n);
                        } else {
                            b.push(n);
                        }
                    }
                    if a.is_empty() {
                        a.push(b.pop().expect("live >= 2"));
                    }
                    if b.is_empty() {
                        b.push(a.pop().expect("live >= 2"));
                    }
                    FaultStep::Partition(vec![a, b])
                }
                53..=64 => FaultStep::Heal,
                65..=74 => FaultStep::LinkLossBurst {
                    per_mille: 100 + rng.below(300) as u16,
                    messages: 20 + rng.below(40) as u32,
                },
                75..=84 => FaultStep::LatencySpike {
                    micros: 1_000 + rng.below(4_000),
                    messages: 10 + rng.below(20) as u32,
                },
                85..=92 => FaultStep::WriteFaultWindow {
                    node: NodeId(rng.below(u64::from(nodes)) as u32),
                    failures: 1 + rng.below(5) as u32,
                },
                _ => FaultStep::ReplicaLag {
                    node: NodeId(rng.below(u64::from(nodes)) as u32),
                    updates: 1 + rng.below(3) as u32,
                },
            };
            steps.push(PlannedFault { at_op, step });
        }
        Self { steps }
    }

    /// Like [`FaultPlan::random`], but drawing from the full fault
    /// vocabulary of the adaptive failure-detection pipeline: link
    /// flaps, asymmetric loss, heartbeat jitter and torn journal
    /// writes join the classic crash/partition mix. A separate
    /// generator (and a perturbed seed stream) so plans for the
    /// non-detector path stay byte-identical across releases.
    pub fn random_adaptive(seed: u64, nodes: u32, ops: u64, faults: usize) -> Self {
        let mut rng = ChaosRng::new(seed ^ 0xADA7_71FE_0000_5EED);
        let mut crashed: BTreeSet<NodeId> = BTreeSet::new();
        let mut steps = Vec::with_capacity(faults);
        let mut indices: Vec<u64> = (0..faults).map(|_| rng.below(ops.max(1))).collect();
        indices.sort_unstable();
        for at_op in indices {
            let live: Vec<NodeId> = (0..nodes)
                .map(NodeId)
                .filter(|n| !crashed.contains(n))
                .collect();
            let step = match rng.below(100) {
                // Crash a live node (keep at least one survivor).
                0..=11 if live.len() > 1 => {
                    let victim = *rng.pick(&live);
                    crashed.insert(victim);
                    FaultStep::Crash(victim)
                }
                // Tear the journal tail, then crash (same survivor rule).
                12..=19 if live.len() > 1 => {
                    let victim = *rng.pick(&live);
                    crashed.insert(victim);
                    FaultStep::WalTornWrite { node: victim }
                }
                // Restart a crashed node.
                20..=35 if !crashed.is_empty() => {
                    let back: Vec<NodeId> = crashed.iter().copied().collect();
                    let node = *rng.pick(&back);
                    crashed.remove(&node);
                    FaultStep::Restart(node)
                }
                // Flap a live node's links — the damping stressor.
                36..=49 if live.len() > 1 => FaultStep::LinkFlap {
                    node: *rng.pick(&live),
                    flaps: 2 + rng.below(4) as u32,
                    period_millis: 100 + rng.below(300),
                },
                // One-directional heartbeat loss between two live nodes.
                50..=59 if live.len() > 1 => {
                    let from = *rng.pick(&live);
                    let rest: Vec<NodeId> = live.iter().copied().filter(|n| *n != from).collect();
                    FaultStep::AsymmetricLoss {
                        from,
                        to: *rng.pick(&rest),
                        per_mille: 200 + rng.below(700) as u16,
                    }
                }
                // Raise (or clear, at 0) the standing heartbeat jitter.
                60..=67 => FaultStep::LinkJitter {
                    micros: rng.below(4) * 10_000,
                },
                // Scripted split of the live nodes into two groups.
                68..=77 if live.len() >= 2 => {
                    let mut a = Vec::new();
                    let mut b = Vec::new();
                    for &n in &live {
                        if rng.chance(50) {
                            a.push(n);
                        } else {
                            b.push(n);
                        }
                    }
                    if a.is_empty() {
                        a.push(b.pop().expect("live >= 2"));
                    }
                    if b.is_empty() {
                        b.push(a.pop().expect("live >= 2"));
                    }
                    FaultStep::Partition(vec![a, b])
                }
                78..=87 => FaultStep::Heal,
                88..=93 => FaultStep::WriteFaultWindow {
                    node: NodeId(rng.below(u64::from(nodes)) as u32),
                    failures: 1 + rng.below(5) as u32,
                },
                _ => FaultStep::ReplicaLag {
                    node: NodeId(rng.below(u64::from(nodes)) as u32),
                    updates: 1 + rng.below(3) as u32,
                },
            };
            steps.push(PlannedFault { at_op, step });
        }
        Self { steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsl_orders_steps_by_op() {
        let plan = FaultPlan::new()
            .at(20, FaultStep::Heal)
            .at(5, FaultStep::Crash(NodeId(1)))
            .at(12, FaultStep::Restart(NodeId(1)));
        let ops: Vec<u64> = plan.steps().iter().map(|p| p.at_op).collect();
        assert_eq!(ops, vec![5, 12, 20]);
    }

    #[test]
    fn random_plans_are_seed_reproducible() {
        let a = FaultPlan::random(99, 4, 200, 24);
        let b = FaultPlan::random(99, 4, 200, 24);
        assert_eq!(a, b);
        let c = FaultPlan::random(100, 4, 200, 24);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn random_plans_never_crash_the_last_node() {
        for seed in 0..50 {
            let plan = FaultPlan::random(seed, 3, 100, 30);
            let mut crashed = 0u32;
            for p in plan.steps() {
                match &p.step {
                    FaultStep::Crash(_) => {
                        crashed += 1;
                        assert!(crashed < 3, "seed {seed} crashed every node");
                    }
                    FaultStep::Restart(_) => crashed -= 1,
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn display_is_compact() {
        let s = FaultStep::Partition(vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]]);
        assert_eq!(s.to_string(), "partition(n0,n1|n2)");
        assert_eq!(FaultStep::Crash(NodeId(7)).to_string(), "crash(n7)");
        let flap = FaultStep::LinkFlap {
            node: NodeId(2),
            flaps: 3,
            period_millis: 150,
        };
        assert_eq!(flap.to_string(), "link_flap(n2,3x150ms)");
        assert_eq!(
            FaultStep::WalTornWrite { node: NodeId(1) }.to_string(),
            "wal_torn(n1)"
        );
    }

    #[test]
    fn adaptive_plans_are_seed_reproducible_and_distinct() {
        let a = FaultPlan::random_adaptive(99, 4, 200, 24);
        let b = FaultPlan::random_adaptive(99, 4, 200, 24);
        assert_eq!(a, b);
        let classic = FaultPlan::random(99, 4, 200, 24);
        assert_ne!(a, classic, "adaptive plans draw from their own stream");
    }

    #[test]
    fn adaptive_plans_never_crash_the_last_node() {
        for seed in 0..50 {
            let plan = FaultPlan::random_adaptive(seed, 3, 100, 30);
            let mut crashed = 0u32;
            for p in plan.steps() {
                match &p.step {
                    FaultStep::Crash(_) | FaultStep::WalTornWrite { .. } => {
                        crashed += 1;
                        assert!(crashed < 3, "seed {seed} crashed every node");
                    }
                    FaultStep::Restart(_) => crashed -= 1,
                    _ => {}
                }
            }
        }
    }
}
