//! Federation chaos: a seeded cross-shard *transfer* workload driven
//! against a [`FederatedCluster`] under shard-local partitions and
//! federation-coordinator crashes, with conservation invariants
//! checked after every operation.
//!
//! The workload moves balance between accounts that live on different
//! shards, so every committed transaction is a genuine cross-shard
//! 2PC. Two invariants make atomicity violations visible as data:
//!
//! * **value conservation** — the committed balances across all
//!   shards always sum to the initial total. A transfer that commits
//!   its debit but loses its credit (or vice versa) breaks the sum
//!   immediately, in whatever partition state the federation is in.
//! * **transaction conservation** — every begun cross-shard
//!   transaction is committed, aborted, or still open, and no
//!   *resolved* transaction's participant still holds a lock.
//!
//! Like the node-level [`ChaosEngine`](crate::ChaosEngine), a run is a
//! reproducible artifact: all decisions flow from one seed through
//! [`ChaosRng`], all time from the federation's shared virtual clock.

use crate::invariant::{InvariantChecker, InvariantViolation};
use crate::rng::ChaosRng;
use dedisys_core::{DeferAll, HighestVersionWins};
use dedisys_federation::{FederatedCluster, RoutingPolicy, ShardId};
use dedisys_object::{AppDescriptor, ClassDescriptor};
use dedisys_telemetry::Telemetry;
use dedisys_types::{NodeId, ObjectId, Result, SimDuration, SystemMode, Value};

/// Configuration of one federation chaos run. Every field participates
/// in determinism: equal configs (and seeds) yield equal runs.
#[derive(Debug, Clone)]
pub struct FederationChaosConfig {
    /// Seed of every random decision.
    pub seed: u64,
    /// Shards in the federation.
    pub shards: u32,
    /// Nodes per shard.
    pub nodes_per_shard: u32,
    /// Accounts created up front (spread over the shards by the ring).
    pub objects: u32,
    /// Transfer operations to attempt.
    pub ops: u64,
    /// Starting balance of every account; `objects * initial_balance`
    /// is the conserved total.
    pub initial_balance: i64,
    /// Per-op percent chance to partition one healthy shard.
    pub partition_pct: u64,
    /// Per-op percent chance to heal (and reconcile) one faulted
    /// shard.
    pub heal_pct: u64,
    /// Percent of prepared transfers explicitly aborted.
    pub abort_pct: u64,
    /// Percent of prepared transfers whose federation coordinator
    /// crashes (recovered later by presumed abort).
    pub coordinator_crash_pct: u64,
    /// Presumed-abort deadline for coordinator-crashed transfers.
    pub xshard_timeout: SimDuration,
}

impl Default for FederationChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            shards: 3,
            nodes_per_shard: 3,
            objects: 12,
            ops: 200,
            initial_balance: 100,
            partition_pct: 15,
            heal_pct: 30,
            abort_pct: 10,
            coordinator_crash_pct: 10,
            xshard_timeout: SimDuration::from_millis(50),
        }
    }
}

/// Outcome of one federation chaos run.
#[derive(Debug, Clone)]
pub struct FederationChaosReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// Transfers attempted.
    pub transfers: u64,
    /// Transfers committed on every participant.
    pub committed: u64,
    /// Transfers aborted (explicitly, by refusal, or presumed).
    pub aborted: u64,
    /// Aborts recovered by federation-level presumed abort.
    pub presumed_aborted: u64,
    /// Shard partitions injected.
    pub partitions: u64,
    /// Shard heal/reconcile cycles run.
    pub heals: u64,
    /// Federation coordinator crashes injected.
    pub coordinator_crashes: u64,
    /// Every invariant violation observed, in order.
    pub violations: Vec<InvariantViolation>,
}

impl FederationChaosReport {
    /// `true` when no invariant was violated at any point.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The federation-wide invariants (see the module docs): per-shard
/// running invariants, cross-shard value conservation over `accounts`,
/// cross-shard transaction conservation, and zero orphaned locks for
/// resolved cross-shard transactions.
pub fn check_federation(
    fed: &FederatedCluster,
    accounts: &[ObjectId],
    expected_total: i64,
) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for s in 0..fed.shard_count() {
        out.extend(InvariantChecker::check_running(fed.shard(ShardId(s))));
    }

    let mut total = 0i64;
    for id in accounts {
        let owner = fed.map().shard_of(id);
        let value = fed
            .coordinator_node(owner)
            .and_then(|node| fed.shard(owner).entity_on(node, id))
            .map(|entity| entity.field("v").clone());
        match value {
            Some(Value::Int(v)) => total += v,
            other => out.push(InvariantViolation {
                invariant: "xshard_conservation",
                detail: format!("account {id} unreadable on {owner}: {other:?}"),
            }),
        }
    }
    if total != expected_total {
        out.push(InvariantViolation {
            invariant: "xshard_conservation",
            detail: format!("committed balances sum to {total}, expected {expected_total}"),
        });
    }

    let stats = fed.stats();
    let open = fed.open_xshard_count() as u64;
    if stats.xshard_begun != stats.xshard_committed + stats.xshard_aborted + open {
        out.push(InvariantViolation {
            invariant: "xshard_tx_conservation",
            detail: format!(
                "begun={} != committed={} + aborted={} + open={open}",
                stats.xshard_begun, stats.xshard_committed, stats.xshard_aborted
            ),
        });
    }

    for (xtx, outcome) in fed.xshard_outcomes() {
        for (shard, tx) in &outcome.participants {
            let cluster = fed.shard(*shard);
            let shard_in_doubt = cluster.in_doubt_txs().any(|(t, _)| t == *tx);
            if !shard_in_doubt && cluster.held_locks().iter().any(|(_, t)| t == tx) {
                out.push(InvariantViolation {
                    invariant: "xshard_no_orphaned_locks",
                    detail: format!("resolved xtx {xtx}: participant {tx} on {shard} holds a lock"),
                });
            }
        }
    }
    out
}

/// Drives the seeded cross-shard transfer workload. See the module
/// docs.
pub struct FederationChaosEngine {
    config: FederationChaosConfig,
    rng: ChaosRng,
    fed: FederatedCluster,
    accounts: Vec<ObjectId>,
    expected_total: i64,
}

impl FederationChaosEngine {
    /// Builds the federation and seeds every account.
    ///
    /// # Errors
    ///
    /// Invalid federation shape, or a failed seeding write.
    pub fn new(config: FederationChaosConfig) -> Result<Self> {
        let mut fed = FederatedCluster::builder(config.shards, config.nodes_per_shard, chaos_app())
            .seed(config.seed)
            .policy(RoutingPolicy::RouteAnyway)
            .xshard_timeout(config.xshard_timeout)
            .build()?;
        let mut accounts = Vec::with_capacity(config.objects as usize);
        for i in 0..config.objects {
            let id = ObjectId::new("Account", format!("acct-{i}"));
            fed.create(&id)?;
            let balance = config.initial_balance;
            let target = id.clone();
            fed.run_routed(&id, |mut session| {
                session.set_field(&target, "v", Value::Int(balance))?;
                session.commit()
            })?;
            accounts.push(id);
        }
        let expected_total = config.initial_balance * i64::from(config.objects);
        Ok(Self {
            rng: ChaosRng::new(config.seed),
            config,
            fed,
            accounts,
            expected_total,
        })
    }

    /// The federation telemetry bus (for attaching exporters before
    /// [`FederationChaosEngine::run`]).
    pub fn telemetry(&self) -> &Telemetry {
        self.fed.telemetry()
    }

    /// Runs the configured number of operations and returns the
    /// report. Never panics on a violation — violations are data.
    pub fn run(mut self) -> FederationChaosReport {
        let mut violations = Vec::new();
        let mut partitions = 0u64;
        let mut heals = 0u64;
        let mut crashes = 0u64;
        for _ in 0..self.config.ops {
            self.fed.clock().advance(SimDuration::from_millis(1));
            self.inject_shard_faults(&mut partitions, &mut heals);
            self.transfer(&mut crashes);
            self.fed.resolve_xshard_in_doubt();
            for s in 0..self.fed.shard_count() {
                self.fed.shard_mut(ShardId(s)).resolve_in_doubt();
            }
            violations.extend(check_federation(
                &self.fed,
                &self.accounts,
                self.expected_total,
            ));
        }

        // Drain: let every pending presumed-abort deadline pass, then
        // heal the world and check once more from a quiet state.
        self.fed.clock().advance(self.config.xshard_timeout * 2);
        self.fed.resolve_xshard_in_doubt();
        for s in 0..self.fed.shard_count() {
            let shard = self.fed.shard_mut(ShardId(s));
            shard.resolve_in_doubt();
            if shard.mode() != SystemMode::Healthy {
                shard.heal();
                shard.reconcile(&mut HighestVersionWins, &mut DeferAll);
            }
        }
        if self.fed.open_xshard_count() != 0 {
            violations.push(InvariantViolation {
                invariant: "xshard_drained",
                detail: format!(
                    "{} cross-shard transaction(s) still open after the drain",
                    self.fed.open_xshard_count()
                ),
            });
        }
        for s in 0..self.fed.shard_count() {
            let locks = self.fed.shard(ShardId(s)).held_locks();
            if !locks.is_empty() {
                violations.push(InvariantViolation {
                    invariant: "xshard_no_orphaned_locks",
                    detail: format!(
                        "shard S{s} still holds {} lock(s) after the drain",
                        locks.len()
                    ),
                });
            }
        }
        violations.extend(check_federation(
            &self.fed,
            &self.accounts,
            self.expected_total,
        ));

        let stats = *self.fed.stats();
        FederationChaosReport {
            seed: self.config.seed,
            transfers: stats.xshard_begun,
            committed: stats.xshard_committed,
            aborted: stats.xshard_aborted,
            presumed_aborted: stats.xshard_presumed_aborted,
            partitions,
            heals,
            coordinator_crashes: crashes,
            violations,
        }
    }

    /// Maybe partitions one healthy shard (majority/minority split)
    /// and maybe heals + reconciles one degraded shard.
    fn inject_shard_faults(&mut self, partitions: &mut u64, heals: &mut u64) {
        let shard_count = self.fed.shard_count();
        if self.rng.chance(self.config.partition_pct) {
            let s = ShardId(self.rng.below(u64::from(shard_count)) as u32);
            if self.fed.shard(s).mode() == SystemMode::Healthy {
                let nodes = self.config.nodes_per_shard;
                let cut = nodes / 2 + 1; // strict majority keeps node 0 writable
                let majority: Vec<NodeId> = (0..cut).map(NodeId).collect();
                let minority: Vec<NodeId> = (cut..nodes).map(NodeId).collect();
                if !minority.is_empty()
                    && self
                        .fed
                        .shard_mut(s)
                        .partition(&[majority, minority])
                        .is_ok()
                {
                    *partitions += 1;
                }
            }
        }
        if self.rng.chance(self.config.heal_pct) {
            let s = ShardId(self.rng.below(u64::from(shard_count)) as u32);
            if self.fed.shard(s).mode() == SystemMode::Degraded {
                let shard = self.fed.shard_mut(s);
                shard.heal();
                shard.reconcile(&mut HighestVersionWins, &mut DeferAll);
                *heals += 1;
            }
        }
    }

    /// One cross-shard transfer: debit one account, credit another,
    /// then commit, abort, or crash the coordinator per the dice.
    fn transfer(&mut self, crashes: &mut u64) {
        let n = self.accounts.len() as u64;
        let ai = self.rng.below(n) as usize;
        let mut bi = self.rng.below(n) as usize;
        if bi == ai {
            bi = (bi + 1) % self.accounts.len();
        }
        let a = self.accounts[ai].clone();
        let b = self.accounts[bi].clone();
        let amount = 1 + self.rng.below(5) as i64;
        let (Some(cur_a), Some(cur_b)) = (self.balance(&a), self.balance(&b)) else {
            return;
        };
        let xtx = self.fed.xshard_begin();
        let staged = self
            .fed
            .xshard_set_field(xtx, &a, "v", Value::Int(cur_a - amount))
            .and_then(|_| {
                self.fed
                    .xshard_set_field(xtx, &b, "v", Value::Int(cur_b + amount))
            });
        if staged.is_err() {
            let _ = self.fed.xshard_abort(xtx);
            return;
        }
        if self.fed.xshard_prepare(xtx).is_err() {
            return; // already resolved aborted by the prepare path
        }
        if self.rng.chance(self.config.abort_pct) {
            let _ = self.fed.xshard_abort(xtx);
        } else if self.rng.chance(self.config.coordinator_crash_pct) {
            if self.fed.crash_coordinator(xtx).is_ok() {
                *crashes += 1;
            }
        } else {
            let _ = self.fed.xshard_commit(xtx);
        }
    }

    /// The committed balance of `id` on its owning shard.
    fn balance(&self, id: &ObjectId) -> Option<i64> {
        let owner = self.fed.map().shard_of(id);
        let node = self.fed.coordinator_node(owner)?;
        match self.fed.shard(owner).entity_on(node, id)?.field("v") {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }
}

fn chaos_app() -> AppDescriptor {
    AppDescriptor::new("federation-chaos")
        .with_class(ClassDescriptor::new("Account").with_field("v", Value::Int(0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(seed: u64) -> FederationChaosReport {
        FederationChaosEngine::new(FederationChaosConfig {
            seed,
            ops: 80,
            ..FederationChaosConfig::default()
        })
        .unwrap()
        .run()
    }

    #[test]
    fn runs_are_clean_and_exercise_every_outcome() {
        let r = report(3);
        assert!(r.clean(), "{:?}", r.violations);
        assert!(r.committed > 0, "no transfer committed");
        assert!(r.aborted > 0, "no transfer aborted");
        assert_eq!(r.transfers, r.committed + r.aborted);
    }

    #[test]
    fn equal_seeds_equal_reports() {
        let (a, b) = (report(7), report(7));
        assert_eq!(a.transfers, b.transfers);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.aborted, b.aborted);
        assert_eq!(a.presumed_aborted, b.presumed_aborted);
        assert_eq!(a.partitions, b.partitions);
        assert_eq!(a.coordinator_crashes, b.coordinator_crashes);
    }

    #[test]
    fn small_seed_sweep_conserves_value_everywhere() {
        for seed in 0..6 {
            let r = report(seed);
            assert!(r.clean(), "seed {seed}: {:?}", r.violations);
        }
    }
}
