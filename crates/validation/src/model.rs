//! The §2.3 reference application: project and employee management.
//!
//! Kept deliberately lightweight (plain integers, no I/O) so the
//! *validation* overheads dominate — in the paper the handcrafted
//! checks alone already ran 35× the unchecked application.

/// Which class an operation targets (drives constraint lookup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetClass {
    /// An employee.
    Employee,
    /// A project.
    Project,
    /// The company itself.
    Company,
}

impl TargetClass {
    /// The class name used in repository signatures.
    pub fn name(self) -> &'static str {
        match self {
            TargetClass::Employee => "Employee",
            TargetClass::Project => "Project",
            TargetClass::Company => "Company",
        }
    }
}

/// One employee record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Employee {
    /// Daily workload limit in minutes.
    pub workload_limit: i64,
    /// Minutes worked today.
    pub daily_minutes: i64,
    /// Projects the employee participates in.
    pub assigned: Vec<usize>,
    /// Accumulated vacation days.
    pub vacation_days: i64,
}

/// One project record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Project {
    /// Budgeted effort in minutes.
    pub budget_minutes: i64,
    /// Effort consumed so far.
    pub consumed_minutes: i64,
    /// Member employees.
    pub members: Vec<usize>,
}

/// The whole company state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Company {
    /// All employees.
    pub employees: Vec<Employee>,
    /// All projects.
    pub projects: Vec<Project>,
    /// Total budget across projects (invariant: stays constant under
    /// transfers).
    pub total_budget: i64,
}

impl Company {
    /// Maximum members per project (constraint parameter).
    pub const MAX_MEMBERS: usize = 20;

    /// Generates the deterministic reference company: 25 employees,
    /// 10 projects.
    pub fn generate() -> Self {
        let employees = (0..25)
            .map(|i| Employee {
                workload_limit: 480,
                daily_minutes: 0,
                assigned: vec![i % 10],
                vacation_days: 25,
            })
            .collect();
        let projects = (0..10)
            .map(|_| Project {
                budget_minutes: 1_000_000,
                consumed_minutes: 0,
                members: Vec::new(),
            })
            .collect();
        let mut company = Company {
            employees,
            projects,
            total_budget: 10_000_000,
        };
        for e in 0..25 {
            company.projects[e % 10].members.push(e);
        }
        company
    }
}

/// An operation of the measured scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `Employee::recordWork(project, minutes)` — precondition
    /// `minutes > 0`, postcondition "consumed increased by minutes",
    /// invariants on the employee and the project.
    RecordWork {
        /// Employee index.
        emp: usize,
        /// Project index.
        proj: usize,
        /// Minutes worked.
        minutes: i64,
    },
    /// `Employee::setWorkloadLimit(limit)` — precondition `limit ≥ 0`.
    SetWorkloadLimit {
        /// Employee index.
        emp: usize,
        /// New limit.
        limit: i64,
    },
    /// `Employee::resetDay()` — clears daily minutes (no
    /// preconditions; invariants still triggered).
    ResetDay {
        /// Employee index.
        emp: usize,
    },
    /// `Project::transferBudget(to, amount)` — precondition
    /// `amount > 0`, postcondition "total budget unchanged",
    /// invariants on both projects.
    TransferBudget {
        /// Source project.
        from: usize,
        /// Destination project.
        to: usize,
        /// Amount in minutes.
        amount: i64,
    },
    /// `Company::audit()` — a read-mostly operation touching every
    /// project (query-style invariants).
    Audit,
}

impl Op {
    /// The class whose method this operation invokes.
    pub fn target_class(self) -> TargetClass {
        match self {
            Op::RecordWork { .. } | Op::SetWorkloadLimit { .. } | Op::ResetDay { .. } => {
                TargetClass::Employee
            }
            Op::TransferBudget { .. } => TargetClass::Project,
            Op::Audit => TargetClass::Company,
        }
    }

    /// The invoked method name.
    pub fn method_name(self) -> &'static str {
        match self {
            Op::RecordWork { .. } => "recordWork",
            Op::SetWorkloadLimit { .. } => "setWorkloadLimit",
            Op::ResetDay { .. } => "resetDay",
            Op::TransferBudget { .. } => "transferBudget",
            Op::Audit => "audit",
        }
    }

    /// Applies the raw business logic (no checks). Returns the
    /// method's "result" (used by postconditions).
    pub fn apply(self, company: &mut Company) -> i64 {
        match self {
            Op::RecordWork { emp, proj, minutes } => {
                company.employees[emp].daily_minutes += minutes;
                company.projects[proj].consumed_minutes += minutes;
                company.employees[emp].daily_minutes
            }
            Op::SetWorkloadLimit { emp, limit } => {
                company.employees[emp].workload_limit = limit;
                limit
            }
            Op::ResetDay { emp } => {
                company.employees[emp].daily_minutes = 0;
                0
            }
            Op::TransferBudget { from, to, amount } => {
                company.projects[from].budget_minutes -= amount;
                company.projects[to].budget_minutes += amount;
                company.projects[to].budget_minutes
            }
            Op::Audit => company
                .projects
                .iter()
                .map(|p| p.consumed_minutes)
                .sum::<i64>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_company_shape() {
        let c = Company::generate();
        assert_eq!(c.employees.len(), 25);
        assert_eq!(c.projects.len(), 10);
        assert_eq!(
            c.projects.iter().map(|p| p.members.len()).sum::<usize>(),
            25
        );
    }

    #[test]
    fn ops_apply_business_logic() {
        let mut c = Company::generate();
        let after = Op::RecordWork {
            emp: 0,
            proj: 0,
            minutes: 60,
        }
        .apply(&mut c);
        assert_eq!(after, 60);
        assert_eq!(c.projects[0].consumed_minutes, 60);

        Op::TransferBudget {
            from: 0,
            to: 1,
            amount: 100,
        }
        .apply(&mut c);
        assert_eq!(c.projects[0].budget_minutes, 999_900);
        assert_eq!(c.projects[1].budget_minutes, 1_000_100);

        Op::ResetDay { emp: 0 }.apply(&mut c);
        assert_eq!(c.employees[0].daily_minutes, 0);
    }

    #[test]
    fn op_metadata() {
        assert_eq!(Op::Audit.target_class(), TargetClass::Company);
        assert_eq!(
            Op::RecordWork {
                emp: 0,
                proj: 0,
                minutes: 1
            }
            .method_name(),
            "recordWork"
        );
    }
}
