//! # dedisys-validation
//!
//! The Chapter 2 laboratory: a quantitative comparison of constraint
//! validation approaches.
//!
//! The dissertation evaluates Java strategies — handcrafted if-checks,
//! constraints-as-aspects (AspectJ), repository-based explicit
//! constraints behind three interception mechanisms (AspectJ, JBoss
//! AOP, `java.lang.reflect.Proxy`) in cached and scan-per-invocation
//! repository variants, compiler-generated checks (JML) and
//! tool-generated interpreted checks (Dresden OCL). This crate builds
//! the Rust equivalents over a shared reference application (the
//! project/employee management scenario of §2.3 with 78 constraints)
//! so the *relative cost structure* can be measured:
//!
//! | Paper approach | Here |
//! |---|---|
//! | No checks | [`Strategy::NoChecks`] |
//! | Handcrafted | [`Strategy::Handcrafted`] |
//! | AspectJ-Interceptor (inline aspects) | [`Strategy::InterceptorInline`] |
//! | JML (compiler-generated) | [`Strategy::Generated`] |
//! | {AspectJ, JBossAOP, Proxy} × repository | [`Strategy::Repository`] with a [`Mechanism`] |
//! | Dresden OCL (tool-generated, interpreted) | [`Strategy::Interpreted`] |
//!
//! The runtime-slice instrumentation of Figure 2.3 (R1 application,
//! R2 interception, R3 parameter extraction, R4 repository search,
//! R5 checks) is available through [`SliceLevel`].
//!
//! ## Example
//!
//! ```
//! use dedisys_validation::{default_ops, CheckCounts, Company, Strategy};
//!
//! let ops = default_ops();
//! let mut counts = CheckCounts::default();
//! let mut company = Company::generate();
//! Strategy::Handcrafted.run(&mut company, &ops, &mut counts);
//! assert!(counts.invariants > 0);
//! assert_eq!(counts.violations, 0); // the scenario never violates (§2.3.1)
//! ```

mod constraints_def;
mod model;
mod scenario;
mod strategies;

pub use constraints_def::{build_expr_constraints, build_native_constraints, NativeConstraint};
pub use model::{Company, Op, TargetClass};
pub use scenario::{
    default_ops, lookup_time_study, measure_wall_clock, LookupStudyRow, MeasureReport,
};
pub use strategies::{CheckCounts, Mechanism, SliceLevel, Strategy};
