//! The measured scenario and measurement helpers (§2.3).

use crate::model::{Company, Op};
use crate::strategies::{CheckCounts, Strategy};
use dedisys_constraints::{
    ConstraintMeta, ConstraintRepository, ContextPreparation, LookupKind, LookupMode,
    RegisteredConstraint, ValidationContext,
};
use dedisys_types::MethodSignature;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The deterministic operation mix of one scenario run: 1600
/// constrained method invocations (the paper's run intercepted 1605).
pub fn default_ops() -> Vec<Op> {
    let mut ops = Vec::with_capacity(1600);
    // 32 working rounds over 25 employees: record work, with periodic
    // day resets keeping everyone under the workload limit.
    for round in 0..32 {
        for emp in 0..25 {
            ops.push(Op::RecordWork {
                emp,
                proj: emp % 10,
                minutes: 12,
            });
        }
        if round % 8 == 7 {
            for emp in 0..25 {
                ops.push(Op::ResetDay { emp });
            }
        }
    }
    // 12 administrative rounds adjusting workload limits.
    for _ in 0..12 {
        for emp in 0..25 {
            ops.push(Op::SetWorkloadLimit { emp, limit: 480 });
        }
    }
    // 250 budget transfers.
    for i in 0..250 {
        ops.push(Op::TransferBudget {
            from: i % 10,
            to: (i + 1) % 10,
            amount: 100,
        });
    }
    // 150 audits.
    for _ in 0..150 {
        ops.push(Op::Audit);
    }
    debug_assert_eq!(ops.len(), 1600);
    ops
}

/// Wall-clock measurement of one strategy.
#[derive(Debug, Clone, Copy)]
pub struct MeasureReport {
    /// Total measured time.
    pub elapsed: Duration,
    /// Measured runs.
    pub runs: u32,
    /// Per-run check counters (identical across runs).
    pub counts: CheckCounts,
}

impl MeasureReport {
    /// Average nanoseconds per run.
    pub fn nanos_per_run(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / f64::from(self.runs)
    }

    /// Overhead factor of this report relative to a baseline (2.1).
    pub fn overhead_vs(&self, baseline: &MeasureReport) -> f64 {
        self.nanos_per_run() / baseline.nanos_per_run()
    }
}

/// Measures `strategy` over the default scenario: `warmup` unmeasured
/// runs (the paper's JIT warm-up, §2.3.2) followed by `runs` measured
/// runs.
pub fn measure_wall_clock(strategy: Strategy, warmup: u32, runs: u32) -> MeasureReport {
    let ops = default_ops();
    let mut runner = strategy.runner();
    let mut counts = CheckCounts::default();
    for _ in 0..warmup {
        let mut company = Company::generate();
        let mut c = CheckCounts::default();
        runner.run(&mut company, &ops, &mut c);
    }
    let start = Instant::now();
    for i in 0..runs {
        let mut company = Company::generate();
        let mut c = CheckCounts::default();
        runner.run(&mut company, &ops, &mut c);
        if i == 0 {
            counts = c;
        }
    }
    MeasureReport {
        elapsed: start.elapsed(),
        runs,
        counts,
    }
}

/// One row of the §2.3.2 lookup-time study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookupStudyRow {
    /// Number of classes in the repository.
    pub classes: u32,
    /// Methods per class.
    pub methods_per_class: u32,
    /// Total registered constraints.
    pub constraints: u32,
    /// Average nanoseconds per (warm, cached) lookup.
    pub nanos_per_lookup: f64,
}

/// Reproduces the §2.3.2 lookup study: repositories of 25/50/100
/// classes × 10/25/50 methods (≥ one constraint per method), fully
/// warmed cache, measuring the per-lookup time — the paper found
/// 0.25–0.52 µs independent of the entry count.
pub fn lookup_time_study() -> Vec<LookupStudyRow> {
    let mut rows = Vec::new();
    for (classes, methods) in [(25u32, 10u32), (50, 25), (100, 50)] {
        let mut repo = ConstraintRepository::new(LookupMode::Cached);
        for class in 0..classes {
            for method in 0..methods {
                let constraint = RegisteredConstraint::new(
                    ConstraintMeta::new(format!("C_{class}_{method}")),
                    Arc::new(|_: &mut ValidationContext<'_>| Ok(true)),
                )
                .context_class(format!("Class{class}"))
                .affects(
                    format!("Class{class}"),
                    format!("method{method}"),
                    ContextPreparation::CalledObject,
                );
                repo.register(constraint).expect("unique names");
            }
        }
        let sigs: Vec<MethodSignature> = (0..classes)
            .flat_map(|c| {
                (0..methods)
                    .map(move |m| MethodSignature::new(format!("Class{c}"), format!("method{m}")))
            })
            .collect();
        // Warm the cache (the study assumes a fully initialized
        // repository).
        for sig in &sigs {
            std::hint::black_box(repo.lookup(sig, LookupKind::Invariant));
        }
        let iterations = 200_000usize;
        let start = Instant::now();
        for i in 0..iterations {
            let sig = &sigs[i % sigs.len()];
            std::hint::black_box(repo.lookup(sig, LookupKind::Invariant));
        }
        let elapsed = start.elapsed();
        rows.push(LookupStudyRow {
            classes,
            methods_per_class: methods,
            constraints: classes * methods,
            nanos_per_lookup: elapsed.as_nanos() as f64 / iterations as f64,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_has_1600_ops_and_never_violates() {
        let ops = default_ops();
        assert_eq!(ops.len(), 1600);
        let mut company = Company::generate();
        let mut counts = CheckCounts::default();
        Strategy::Handcrafted.run(&mut company, &ops, &mut counts);
        assert_eq!(counts.violations, 0);
        assert_eq!(counts.intercepted, 1600);
        // The paper's run: 4875 invariants, 1097 posts, 433 pres —
        // ours is the same order of magnitude.
        assert!(counts.invariants > 2000, "{counts:?}");
        assert!(counts.posts > 500, "{counts:?}");
        assert!(counts.pres > 300, "{counts:?}");
    }

    #[test]
    fn measure_returns_sane_report() {
        let report = measure_wall_clock(Strategy::Handcrafted, 1, 3);
        assert_eq!(report.runs, 3);
        assert!(report.nanos_per_run() > 0.0);
        let baseline = measure_wall_clock(Strategy::NoChecks, 1, 3);
        assert!(report.overhead_vs(&baseline) >= 1.0);
    }

    #[test]
    fn lookup_study_rows() {
        // Smoke-check the smallest configuration only (fast).
        let rows = lookup_time_study();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.nanos_per_lookup > 0.0);
            assert_eq!(row.constraints, row.classes * row.methods_per_class);
        }
    }
}
