//! The 78 integrity constraints of the reference application, in the
//! representations the different strategies need:
//!
//! * native function pointers over `&Company` (handcrafted-style
//!   strategies),
//! * explicit constraint classes validating through a
//!   [`ValidationContext`] (repository strategies),
//! * interpreted [`ExprConstraint`]s (the Dresden-OCL analogue).

use crate::model::{Company, Op};
use dedisys_constraints::expr::ExprConstraint;
use dedisys_constraints::{
    Constraint, ConstraintKind, ConstraintMeta, ContextPreparation, ObjectAccess,
    RegisteredConstraint, ValidationContext,
};
use dedisys_types::{ClassName, ObjectId, Result, Value};
use std::sync::Arc;

/// Kind of a native check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeKind {
    /// Checked before the method body.
    Pre,
    /// Checked after the method body.
    Post,
    /// Checked before *and* after public methods (§2.1.6).
    Inv,
}

/// Snapshot taken before an operation for postconditions.
#[derive(Debug, Clone, Copy, Default)]
pub struct PreSnapshot {
    /// `dailyMinutes` of the target employee (recordWork).
    pub daily_before: i64,
    /// Total budget before (transferBudget).
    pub total_before: i64,
}

impl PreSnapshot {
    /// Captures the snapshot relevant to `op`.
    pub fn capture(op: Op, company: &Company) -> Self {
        match op {
            Op::RecordWork { emp, .. } => PreSnapshot {
                daily_before: company.employees[emp].daily_minutes,
                total_before: 0,
            },
            Op::TransferBudget { .. } => PreSnapshot {
                daily_before: 0,
                total_before: company.projects.iter().map(|p| p.budget_minutes).sum(),
            },
            _ => PreSnapshot::default(),
        }
    }
}

/// Context passed to native checks.
#[derive(Debug, Clone, Copy)]
pub struct OpCtx {
    /// The operation.
    pub op: Op,
    /// The method result (postconditions; 0 before execution).
    pub result: i64,
    /// The `@pre` snapshot.
    pub pre: PreSnapshot,
}

/// A constraint as a plain function over the company.
#[derive(Debug, Clone, Copy)]
pub struct NativeConstraint {
    /// Constraint name.
    pub name: &'static str,
    /// When it is checked.
    pub kind: NativeKind,
    /// The predicate.
    pub check: fn(&Company, &OpCtx) -> bool,
}

/// The native checks attached to one method.
#[derive(Debug, Clone, Copy, Default)]
pub struct MethodChecks {
    /// Preconditions.
    pub pres: &'static [NativeConstraint],
    /// Postconditions.
    pub posts: &'static [NativeConstraint],
    /// Invariants (checked before and after).
    pub invs: &'static [NativeConstraint],
}

macro_rules! nc {
    ($name:literal, $kind:ident, $check:expr) => {
        NativeConstraint {
            name: $name,
            kind: NativeKind::$kind,
            check: $check,
        }
    };
}

// --- Native predicate functions -------------------------------------

fn e1(c: &Company, x: &OpCtx) -> bool {
    let emp = target_emp(x.op);
    c.employees[emp].daily_minutes <= c.employees[emp].workload_limit
}

fn e2(c: &Company, x: &OpCtx) -> bool {
    c.employees[target_emp(x.op)].daily_minutes >= 0
}

fn e4(c: &Company, x: &OpCtx) -> bool {
    c.employees[target_emp(x.op)].workload_limit <= 1440
}

fn r1(c: &Company, x: &OpCtx) -> bool {
    let proj = target_proj(x.op);
    c.projects[proj].consumed_minutes <= c.projects[proj].budget_minutes
}

fn r2(c: &Company, x: &OpCtx) -> bool {
    c.projects[target_proj(x.op)].budget_minutes >= 0
}

fn c1(c: &Company, _x: &OpCtx) -> bool {
    c.projects.iter().map(|p| p.budget_minutes).sum::<i64>() == c.total_budget
}

fn c2(c: &Company, _x: &OpCtx) -> bool {
    c.projects
        .iter()
        .flat_map(|p| p.members.iter())
        .all(|&m| m < c.employees.len())
}

fn p1(_c: &Company, x: &OpCtx) -> bool {
    match x.op {
        Op::RecordWork { minutes, .. } => minutes > 0,
        _ => true,
    }
}

fn p2(_c: &Company, x: &OpCtx) -> bool {
    match x.op {
        Op::RecordWork { minutes, .. } => minutes <= 480,
        _ => true,
    }
}

fn p3(_c: &Company, x: &OpCtx) -> bool {
    match x.op {
        Op::SetWorkloadLimit { limit, .. } => limit >= 0,
        _ => true,
    }
}

fn t1(_c: &Company, x: &OpCtx) -> bool {
    match x.op {
        Op::TransferBudget { amount, .. } => amount > 0,
        _ => true,
    }
}

fn t2(_c: &Company, x: &OpCtx) -> bool {
    match x.op {
        Op::TransferBudget { amount, .. } => amount <= 10_000,
        _ => true,
    }
}

fn q1(c: &Company, x: &OpCtx) -> bool {
    match x.op {
        Op::RecordWork { emp, minutes, .. } => {
            c.employees[emp].daily_minutes == x.pre.daily_before + minutes
        }
        _ => true,
    }
}

fn q2(c: &Company, x: &OpCtx) -> bool {
    match x.op {
        Op::SetWorkloadLimit { emp, limit } => c.employees[emp].workload_limit == limit,
        _ => true,
    }
}

fn q3(c: &Company, x: &OpCtx) -> bool {
    match x.op {
        Op::ResetDay { emp } => c.employees[emp].daily_minutes == 0,
        _ => true,
    }
}

fn t3(c: &Company, x: &OpCtx) -> bool {
    match x.op {
        Op::TransferBudget { .. } => {
            c.projects.iter().map(|p| p.budget_minutes).sum::<i64>() == x.pre.total_before
        }
        _ => true,
    }
}

fn t4(c: &Company, x: &OpCtx) -> bool {
    match x.op {
        Op::TransferBudget { to, .. } => c.projects[to].budget_minutes == x.result,
        _ => true,
    }
}

/// Employee index an op targets (0 if none).
fn target_emp(op: Op) -> usize {
    match op {
        Op::RecordWork { emp, .. } | Op::SetWorkloadLimit { emp, .. } | Op::ResetDay { emp } => emp,
        _ => 0,
    }
}

/// Project index an op targets (0 if none).
fn target_proj(op: Op) -> usize {
    match op {
        Op::RecordWork { proj, .. } => proj,
        Op::TransferBudget { from, .. } => from,
        _ => 0,
    }
}

// --- Per-method native check tables (mirrors the aspect pointcuts) ---

static RECORD_WORK: MethodChecks = MethodChecks {
    pres: &[
        nc!("P1_minutesPositive", Pre, p1),
        nc!("P2_minutesBounded", Pre, p2),
    ],
    posts: &[nc!("Q1_dailyIncreased", Post, q1)],
    invs: &[
        nc!("E1_workloadLimit", Inv, e1),
        nc!("R1_consumedWithinBudget", Inv, r1),
    ],
};

static SET_WORKLOAD_LIMIT: MethodChecks = MethodChecks {
    pres: &[nc!("P3_limitNonNegative", Pre, p3)],
    posts: &[nc!("Q2_limitApplied", Post, q2)],
    invs: &[
        nc!("E1_workloadLimit", Inv, e1),
        nc!("E4_limitBounded", Inv, e4),
    ],
};

static RESET_DAY: MethodChecks = MethodChecks {
    pres: &[],
    posts: &[nc!("Q3_dayCleared", Post, q3)],
    invs: &[nc!("E2_dailyNonNegative", Inv, e2)],
};

static TRANSFER_BUDGET: MethodChecks = MethodChecks {
    pres: &[
        nc!("T1_amountPositive", Pre, t1),
        nc!("T2_amountBounded", Pre, t2),
    ],
    posts: &[
        nc!("T3_totalPreserved", Post, t3),
        nc!("T4_destIncreased", Post, t4),
    ],
    invs: &[
        nc!("R2_budgetNonNegative", Inv, r2),
        nc!("C1_totalMatches", Inv, c1),
    ],
};

static AUDIT: MethodChecks = MethodChecks {
    pres: &[],
    posts: &[],
    invs: &[
        nc!("C1_totalMatches", Inv, c1),
        nc!("C2_membersValid", Inv, c2),
    ],
};

/// The native checks for a method.
pub fn native_checks_for(method: &str) -> MethodChecks {
    match method {
        "recordWork" => RECORD_WORK,
        "setWorkloadLimit" => SET_WORKLOAD_LIMIT,
        "resetDay" => RESET_DAY,
        "transferBudget" => TRANSFER_BUDGET,
        "audit" => AUDIT,
        _ => MethodChecks::default(),
    }
}

/// All distinct native constraints (for reporting).
pub fn build_native_constraints() -> Vec<NativeConstraint> {
    let mut all = Vec::new();
    for m in [
        "recordWork",
        "setWorkloadLimit",
        "resetDay",
        "transferBudget",
        "audit",
    ] {
        let checks = native_checks_for(m);
        for c in checks.pres.iter().chain(checks.posts).chain(checks.invs) {
            if !all.iter().any(|x: &NativeConstraint| x.name == c.name) {
                all.push(*c);
            }
        }
    }
    all
}

// --- Repository / explicit-constraint-class representations ----------

/// Field access over the company, used by the explicit constraint
/// classes and the interpreted constraints: values are boxed into
/// [`Value`]s the way the Java implementations moved through
/// reflection.
pub struct CompanyAccess<'a> {
    /// The company being validated.
    pub company: &'a Company,
}

impl ObjectAccess for CompanyAccess<'_> {
    fn field(&mut self, id: &ObjectId, field: &str) -> Result<Value> {
        let c = self.company;
        let v = match id.class().as_str() {
            "Employee" => {
                let i: usize = id.key().parse().unwrap_or(0);
                let e = &c.employees[i % c.employees.len()];
                match field {
                    "dailyMinutes" => Value::Int(e.daily_minutes),
                    "workloadLimit" => Value::Int(e.workload_limit),
                    "vacationDays" => Value::Int(e.vacation_days),
                    "assignedCount" => Value::Int(e.assigned.len() as i64),
                    _ => Value::Null,
                }
            }
            "Project" => {
                let i: usize = id.key().parse().unwrap_or(0);
                let p = &c.projects[i % c.projects.len()];
                match field {
                    "budgetMinutes" => Value::Int(p.budget_minutes),
                    "consumedMinutes" => Value::Int(p.consumed_minutes),
                    "membersCount" => Value::Int(p.members.len() as i64),
                    _ => Value::Null,
                }
            }
            "Company" => match field {
                "totalBudget" => Value::Int(c.total_budget),
                "sumBudgets" => Value::Int(c.projects.iter().map(|p| p.budget_minutes).sum()),
                "membersValid" => Value::Bool(
                    c.projects
                        .iter()
                        .flat_map(|p| p.members.iter())
                        .all(|&m| m < c.employees.len()),
                ),
                "projectCount" => Value::Int(c.projects.len() as i64),
                _ => Value::Null,
            },
            _ => Value::Null,
        };
        Ok(v)
    }

    fn objects_of_class(&mut self, class: &ClassName) -> Vec<ObjectId> {
        match class.as_str() {
            "Employee" => (0..self.company.employees.len())
                .map(|i| ObjectId::new("Employee", i.to_string()))
                .collect(),
            "Project" => (0..self.company.projects.len())
                .map(|i| ObjectId::new("Project", i.to_string()))
                .collect(),
            "Company" => vec![ObjectId::new("Company", "0")],
            _ => Vec::new(),
        }
    }
}

/// Wraps a constraint with `@pre` snapshotting of self fields.
pub struct SnapshotWrapper<C> {
    fields: Vec<(String, String)>,
    inner: C,
}

impl<C: Constraint> Constraint for SnapshotWrapper<C> {
    fn validate(&self, ctx: &mut ValidationContext<'_>) -> Result<bool> {
        self.inner.validate(ctx)
    }

    fn before_method_invocation(&self, ctx: &mut ValidationContext<'_>) {
        for (key, field) in &self.fields {
            if let Ok(v) = ctx.self_field(field) {
                ctx.store_pre(key.clone(), v);
            }
        }
    }
}

/// The constraint source expressions: (name, kind, context class,
/// affected methods, expression, snapshot fields).
#[allow(clippy::type_complexity)]
fn constraint_specs() -> Vec<(
    &'static str,
    ConstraintKind,
    &'static str,
    Vec<(&'static str, &'static str)>,
    &'static str,
    Vec<(&'static str, &'static str)>,
)> {
    use ConstraintKind::{HardInvariant as Inv, Postcondition as Post, Precondition as Pre};
    let mut specs = vec![
        // Core invariants.
        (
            "E1_workloadLimit",
            Inv,
            "Employee",
            vec![("Employee", "recordWork"), ("Employee", "setWorkloadLimit")],
            "self.dailyMinutes <= self.workloadLimit",
            vec![],
        ),
        (
            "E2_dailyNonNegative",
            Inv,
            "Employee",
            vec![("Employee", "resetDay")],
            "self.dailyMinutes >= 0",
            vec![],
        ),
        (
            "E4_limitBounded",
            Inv,
            "Employee",
            vec![("Employee", "setWorkloadLimit")],
            "self.workloadLimit <= 1440",
            vec![],
        ),
        (
            "R1_consumedWithinBudget",
            Inv,
            "Project",
            vec![("Employee", "recordWork")],
            "self.consumedMinutes <= self.budgetMinutes",
            vec![],
        ),
        (
            "R2_budgetNonNegative",
            Inv,
            "Project",
            vec![("Project", "transferBudget")],
            "self.budgetMinutes >= 0",
            vec![],
        ),
        (
            "C1_totalMatches",
            Inv,
            "Company",
            vec![("Project", "transferBudget"), ("Company", "audit")],
            "self.totalBudget = self.sumBudgets",
            vec![],
        ),
        (
            "C2_membersValid",
            Inv,
            "Company",
            vec![("Company", "audit")],
            "self.membersValid",
            vec![],
        ),
        // Preconditions.
        (
            "P1_minutesPositive",
            Pre,
            "Employee",
            vec![("Employee", "recordWork")],
            "arg(1) > 0",
            vec![],
        ),
        (
            "P2_minutesBounded",
            Pre,
            "Employee",
            vec![("Employee", "recordWork")],
            "arg(1) <= 480",
            vec![],
        ),
        (
            "P3_limitNonNegative",
            Pre,
            "Employee",
            vec![("Employee", "setWorkloadLimit")],
            "arg(0) >= 0",
            vec![],
        ),
        (
            "T1_amountPositive",
            Pre,
            "Project",
            vec![("Project", "transferBudget")],
            "arg(1) > 0",
            vec![],
        ),
        (
            "T2_amountBounded",
            Pre,
            "Project",
            vec![("Project", "transferBudget")],
            "arg(1) <= 10000",
            vec![],
        ),
        // Postconditions.
        (
            "Q1_dailyIncreased",
            Post,
            "Employee",
            vec![("Employee", "recordWork")],
            "self.dailyMinutes = pre(\"daily\") + arg(1)",
            vec![("daily", "dailyMinutes")],
        ),
        (
            "Q2_limitApplied",
            Post,
            "Employee",
            vec![("Employee", "setWorkloadLimit")],
            "self.workloadLimit = arg(0)",
            vec![],
        ),
        (
            "Q3_dayCleared",
            Post,
            "Employee",
            vec![("Employee", "resetDay")],
            "self.dailyMinutes = 0",
            vec![],
        ),
        (
            "T3_totalPreserved",
            Post,
            "Company",
            vec![("Project", "transferBudget")],
            "self.totalBudget = self.sumBudgets",
            vec![],
        ),
        (
            "T4_destIncreased",
            Post,
            "Project",
            vec![("Project", "transferBudget")],
            "self.budgetMinutes >= 0",
            vec![],
        ),
    ];
    debug_assert_eq!(specs.len(), 17);
    specs.reserve(61);
    specs
}

/// Names of the generated filler invariants completing the set of 78
/// (real applications carry many similar threshold constraints; these
/// are registered — and scanned by the non-cached repository — but
/// attached to methods the scenario rarely calls).
const FILLER_COUNT: usize = 61;

fn filler_expr(i: usize) -> (&'static str, String) {
    match i % 3 {
        0 => ("Employee", format!("self.vacationDays <= {}", 40 + i)),
        1 => ("Project", format!("self.membersCount <= {}", 20 + i)),
        _ => ("Company", format!("self.projectCount <= {}", 100 + i)),
    }
}

fn build_all(interpreted: bool) -> Vec<RegisteredConstraint> {
    let mut out = Vec::new();
    for (name, kind, context_class, methods, expr, snaps) in constraint_specs() {
        let implementation: Arc<dyn Constraint> = make_impl(name, expr, &snaps, interpreted);
        let mut rc =
            RegisteredConstraint::new(ConstraintMeta::new(name).kind(kind), implementation)
                .context_class(context_class);
        for (class, method) in methods {
            rc = rc.affects(class, method, ContextPreparation::CalledObject);
        }
        out.push(rc);
    }
    for i in 0..FILLER_COUNT {
        let (class, expr) = filler_expr(i);
        let name = format!("F{i}_threshold");
        let implementation: Arc<dyn Constraint> = make_impl(&name, &expr, &[], interpreted);
        out.push(
            RegisteredConstraint::new(
                ConstraintMeta::new(name).kind(ConstraintKind::HardInvariant),
                implementation,
            )
            .context_class(class)
            .affects(class, "maintenance", ContextPreparation::CalledObject),
        );
    }
    debug_assert_eq!(out.len(), 78);
    out
}

/// The Dresden-OCL-analogue evaluation: the tool-generated machinery
/// runs the whole front end (tokenize + parse) plus the interpreter on
/// *every* check — modelling the heavyweight generated OCL library
/// code whose 405× overhead §2.3.2 measured.
struct ToolGeneratedCheck {
    source: String,
}

impl Constraint for ToolGeneratedCheck {
    fn validate(&self, ctx: &mut ValidationContext<'_>) -> Result<bool> {
        // The generated OCL library made several passes over the
        // expression per check (type conformance, @pre resolution,
        // collection wrapping, evaluation) — modelled as repeated
        // front-end + interpreter runs.
        let mut result = false;
        for _pass in 0..4 {
            result = dedisys_constraints::expr::eval_str(&self.source, ctx)?.truthy();
        }
        Ok(result)
    }
}

fn make_impl(
    name: &str,
    expr: &str,
    snaps: &[(&'static str, &'static str)],
    interpreted: bool,
) -> Arc<dyn Constraint> {
    // Validate the expression eagerly in both modes.
    let _parsed = ExprConstraint::parse(expr).expect("constraint expressions are valid");
    let inner: Arc<dyn Constraint> = if interpreted {
        Arc::new(ToolGeneratedCheck {
            source: expr.to_owned(),
        })
    } else {
        // Explicit constraint class (§2.1.4): the predicate is compiled
        // code reading through the validation context.
        closure_impl(name)
    };
    if snaps.is_empty() {
        inner
    } else {
        Arc::new(SnapshotWrapper {
            fields: snaps
                .iter()
                .map(|(k, f)| ((*k).to_owned(), (*f).to_owned()))
                .collect(),
            inner: ArcConstraint(inner),
        })
    }
}

/// Adapter so `SnapshotWrapper` can wrap an `Arc<dyn Constraint>`.
struct ArcConstraint(Arc<dyn Constraint>);

impl Constraint for ArcConstraint {
    fn validate(&self, ctx: &mut ValidationContext<'_>) -> Result<bool> {
        self.0.validate(ctx)
    }

    fn before_method_invocation(&self, ctx: &mut ValidationContext<'_>) {
        self.0.before_method_invocation(ctx);
    }
}

fn int(v: Value) -> i64 {
    v.as_int().unwrap_or(0)
}

/// The hand-written explicit-constraint-class bodies (one closure per
/// named constraint, matching the declarative expressions exactly).
fn closure_impl(name: &str) -> Arc<dyn Constraint> {
    type Ctx<'a, 'b> = &'a mut ValidationContext<'b>;
    match name {
        "E1_workloadLimit" => Arc::new(|ctx: Ctx| {
            Ok(int(ctx.self_field("dailyMinutes")?) <= int(ctx.self_field("workloadLimit")?))
        }),
        "E2_dailyNonNegative" => Arc::new(|ctx: Ctx| Ok(int(ctx.self_field("dailyMinutes")?) >= 0)),
        "E4_limitBounded" => Arc::new(|ctx: Ctx| Ok(int(ctx.self_field("workloadLimit")?) <= 1440)),
        "R1_consumedWithinBudget" => Arc::new(|ctx: Ctx| {
            Ok(int(ctx.self_field("consumedMinutes")?) <= int(ctx.self_field("budgetMinutes")?))
        }),
        "R2_budgetNonNegative" => {
            Arc::new(|ctx: Ctx| Ok(int(ctx.self_field("budgetMinutes")?) >= 0))
        }
        "C1_totalMatches" | "T3_totalPreserved" => Arc::new(|ctx: Ctx| {
            Ok(int(ctx.self_field("totalBudget")?) == int(ctx.self_field("sumBudgets")?))
        }),
        "C2_membersValid" => Arc::new(|ctx: Ctx| Ok(ctx.self_field("membersValid")?.truthy())),
        "P1_minutesPositive" => {
            Arc::new(|ctx: Ctx| Ok(ctx.args().get(1).is_none_or(|v| int(v.clone()) > 0)))
        }
        "P2_minutesBounded" => {
            Arc::new(|ctx: Ctx| Ok(ctx.args().get(1).is_none_or(|v| int(v.clone()) <= 480)))
        }
        "P3_limitNonNegative" => {
            Arc::new(|ctx: Ctx| Ok(ctx.args().first().is_none_or(|v| int(v.clone()) >= 0)))
        }
        "T1_amountPositive" => {
            Arc::new(|ctx: Ctx| Ok(ctx.args().get(1).is_none_or(|v| int(v.clone()) > 0)))
        }
        "T2_amountBounded" => {
            Arc::new(|ctx: Ctx| Ok(ctx.args().get(1).is_none_or(|v| int(v.clone()) <= 10_000)))
        }
        "Q1_dailyIncreased" => Arc::new(|ctx: Ctx| {
            let pre = ctx.pre("daily").cloned().map_or(0, int);
            let arg = ctx.args().get(1).cloned().map_or(0, int);
            Ok(int(ctx.self_field("dailyMinutes")?) == pre + arg)
        }),
        "Q2_limitApplied" => Arc::new(|ctx: Ctx| {
            let arg = ctx.args().first().cloned().map_or(0, int);
            Ok(int(ctx.self_field("workloadLimit")?) == arg)
        }),
        "Q3_dayCleared" => Arc::new(|ctx: Ctx| Ok(int(ctx.self_field("dailyMinutes")?) == 0)),
        "T4_destIncreased" => Arc::new(|ctx: Ctx| Ok(int(ctx.self_field("budgetMinutes")?) >= 0)),
        other => {
            // Filler threshold invariants F<i>_threshold.
            let i: usize = other
                .trim_start_matches('F')
                .split('_')
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("unknown constraint '{other}'"));
            match i % 3 {
                0 => Arc::new(move |ctx: Ctx| {
                    Ok(int(ctx.self_field("vacationDays")?) <= (40 + i) as i64)
                }),
                1 => Arc::new(move |ctx: Ctx| {
                    Ok(int(ctx.self_field("membersCount")?) <= (20 + i) as i64)
                }),
                _ => Arc::new(move |ctx: Ctx| {
                    Ok(int(ctx.self_field("projectCount")?) <= (100 + i) as i64)
                }),
            }
        }
    }
}

/// Builds the 78 constraints as explicit constraint classes (for the
/// repository strategies).
pub fn build_registered_constraints() -> Vec<RegisteredConstraint> {
    build_all(false)
}

/// Builds the 78 constraints as interpreted expressions (for the
/// Dresden-OCL-analogue strategy).
pub fn build_expr_constraints() -> Vec<RegisteredConstraint> {
    build_all(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventy_eight_constraints() {
        assert_eq!(build_registered_constraints().len(), 78);
        assert_eq!(build_expr_constraints().len(), 78);
        assert!(build_native_constraints().len() >= 15);
    }

    #[test]
    fn native_checks_hold_on_fresh_company() {
        let c = Company::generate();
        let ctx = OpCtx {
            op: Op::RecordWork {
                emp: 0,
                proj: 0,
                minutes: 60,
            },
            result: 0,
            pre: PreSnapshot::default(),
        };
        for check in build_native_constraints() {
            if check.kind == NativeKind::Inv {
                assert!((check.check)(&c, &ctx), "{}", check.name);
            }
        }
    }

    #[test]
    fn company_access_boxes_fields() {
        let c = Company::generate();
        let mut access = CompanyAccess { company: &c };
        let emp = ObjectId::new("Employee", "3");
        assert_eq!(
            access.field(&emp, "workloadLimit").unwrap(),
            Value::Int(480)
        );
        let comp = ObjectId::new("Company", "0");
        assert_eq!(
            access.field(&comp, "totalBudget").unwrap(),
            Value::Int(10_000_000)
        );
        assert_eq!(
            access.objects_of_class(&ClassName::from("Project")).len(),
            10
        );
    }

    #[test]
    fn registered_constraints_validate_against_company() {
        let c = Company::generate();
        for rc in build_registered_constraints() {
            if rc.meta.kind != ConstraintKind::HardInvariant {
                continue;
            }
            let class = rc.context_class.clone().unwrap();
            let mut access = CompanyAccess { company: &c };
            let ctx_obj = ObjectId::new(class, "0");
            let mut ctx = ValidationContext::for_invariant(ctx_obj, &mut access);
            assert_eq!(
                rc.implementation.validate(&mut ctx),
                Ok(true),
                "{}",
                rc.name()
            );
        }
    }
}
