//! The repository-based strategies (explicit constraint classes behind
//! generic interception, §2.1.4/§2.1.5) and the wrapper-based
//! interpreted strategy (Dresden-OCL analogue, §2.1.2).

use super::{CheckCounts, Mechanism, SliceLevel};
use crate::constraints_def::{build_expr_constraints, build_registered_constraints, CompanyAccess};
use crate::model::{Company, Op};
use dedisys_constraints::{
    ConstraintKind, ConstraintRepository, LookupKind, LookupMode, RegisteredConstraint,
    ValidationContext,
};
use dedisys_types::{MethodName, MethodSignature, ObjectId, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A reified invocation passed through the dynamic interceptor chain
/// (the JBoss-AOP invocation object).
struct DynInvocation {
    class: &'static str,
    method: &'static str,
    args: Vec<Value>,
}

/// A link of the lab's dynamic interceptor chain (virtual dispatch).
trait LabInterceptor: Send {
    fn invoke(&self, inv: &DynInvocation) -> u64;
}

struct Forwarder(u64);

impl LabInterceptor for Forwarder {
    fn invoke(&self, inv: &DynInvocation) -> u64 {
        // Touch the invocation so the call cannot be optimized away.
        self.0 + inv.args.len() as u64 + inv.method.len() as u64 + inv.class.len() as u64
    }
}

/// Pre-bound checks of one method (wrapper-based instrumentation).
#[derive(Default)]
struct MethodBinding {
    pres: Vec<Arc<RegisteredConstraint>>,
    posts: Vec<Arc<RegisteredConstraint>>,
    invs: Vec<Arc<RegisteredConstraint>>,
}

/// The prepared engine shared by repository and interpreted
/// strategies.
pub struct RepoEngine {
    mechanism: Mechanism,
    slice: SliceLevel,
    wrapper_based: bool,
    repo: ConstraintRepository,
    /// `"Class" → [(method name, signature)]` — the `getMethod` table
    /// the static mechanism scans linearly (§2.3.2: AspectJ's costly
    /// `Object.getClass().getMethod(..)`).
    class_methods: HashMap<&'static str, Vec<(String, MethodSignature)>>,
    /// `"Class::method" → handler id` — the reflective dispatch table.
    handler_table: HashMap<String, usize>,
    sig_by_id: Vec<MethodSignature>,
    chain: Vec<Box<dyn LabInterceptor>>,
    bindings: HashMap<&'static str, MethodBinding>,
}

const METHODS: [(&str, &str); 5] = [
    ("Employee", "recordWork"),
    ("Employee", "setWorkloadLimit"),
    ("Employee", "resetDay"),
    ("Project", "transferBudget"),
    ("Company", "audit"),
];

impl RepoEngine {
    /// Prepares a repository engine.
    pub fn new(mechanism: Mechanism, cached: bool, slice: SliceLevel, interpreted: bool) -> Self {
        let constraints = if interpreted {
            build_expr_constraints()
        } else {
            build_registered_constraints()
        };
        let mut repo = ConstraintRepository::new(if cached {
            LookupMode::Cached
        } else {
            LookupMode::Scan
        });
        for c in &constraints {
            repo.register(c.clone()).expect("unique constraint names");
        }
        let mut class_methods: HashMap<&'static str, Vec<(String, MethodSignature)>> =
            HashMap::new();
        let mut handler_table = HashMap::new();
        let mut sig_by_id = Vec::new();
        for (class, method) in METHODS {
            let sig = MethodSignature::new(class, method);
            class_methods
                .entry(class)
                .or_default()
                .push((method.to_owned(), sig.clone()));
            handler_table.insert(format!("{class}::{method}"), sig_by_id.len());
            sig_by_id.push(sig);
        }
        // Pre-bind per-method constraint lists (wrapper-based
        // instrumentation resolves trigger points at build time).
        let mut bindings: HashMap<&'static str, MethodBinding> = HashMap::new();
        for (class, method) in METHODS {
            let sig = MethodSignature::new(class, method);
            let mut binding = MethodBinding::default();
            for c in &constraints {
                if c.preparation_for(&sig).is_none() {
                    continue;
                }
                let list = match c.meta.kind {
                    ConstraintKind::Precondition => &mut binding.pres,
                    ConstraintKind::Postcondition => &mut binding.posts,
                    _ => &mut binding.invs,
                };
                list.push(Arc::new(c.clone()));
            }
            bindings.insert(method, binding);
        }
        Self {
            mechanism,
            slice,
            wrapper_based: interpreted,
            repo,
            class_methods,
            handler_table,
            sig_by_id,
            chain: vec![
                Box::new(Forwarder(1)),
                Box::new(Forwarder(2)),
                Box::new(Forwarder(3)),
            ],
            bindings,
        }
    }

    /// The interpreted (Dresden-OCL analogue) configuration:
    /// wrapper-based instrumentation, no repository search, interpreted
    /// constraint expressions.
    pub fn wrapper_based() -> Self {
        Self::new(Mechanism::Static, true, SliceLevel::R5, true)
    }

    /// Runs the scenario.
    pub fn run(&mut self, company: &mut Company, ops: &[Op], counts: &mut CheckCounts) {
        for &op in ops {
            counts.intercepted += 1;
            if self.wrapper_based {
                // Wrapper-based: the instrumented method body embeds
                // its (interpreted) checks directly.
                let binding = &self.bindings[op.method_name()];
                let args = op_args(op);
                run_checks(binding, company, op, &args, counts);
                continue;
            }
            // --- R2: invocation interception ---
            let class = op.target_class().name();
            let method = op.method_name();
            let dyn_args: Option<Vec<Value>> = match self.mechanism {
                Mechanism::Static => {
                    // Statically dispatched advice: nothing to build.
                    None
                }
                Mechanism::Dyn => {
                    // Build the invocation object and pass it through
                    // the interceptor chain.
                    let inv = Box::new(DynInvocation {
                        class,
                        method,
                        args: op_args(op),
                    });
                    let mut acc = 0u64;
                    for link in &self.chain {
                        acc = acc.wrapping_add(link.invoke(&inv));
                    }
                    std::hint::black_box(acc);
                    Some(inv.args)
                }
                Mechanism::Reflective => {
                    // Name-based dispatch: format the key and resolve
                    // the handler reflectively.
                    let key = format!("{class}::{method}");
                    let id = self.handler_table.get(&key).copied().unwrap_or(0);
                    std::hint::black_box(id);
                    Some(op_args(op))
                }
            };
            if self.slice == SliceLevel::R2 {
                std::hint::black_box(op.apply(company));
                continue;
            }
            // --- R3: parameter extraction ---
            let (sig, args) = match self.mechanism {
                Mechanism::Static => {
                    // AspectJ analogue: the join point only exposes the
                    // plain object — resolving the Method handle costs
                    // a `getClass().getMethod(..)`, which formats and
                    // compares full signatures across the class's
                    // method table (§2.3.2: this is where AspectJ's
                    // interception advantage is lost, Figure 2.6).
                    let wanted = format!("{class}::{method}");
                    let methods = &self.class_methods[class];
                    let sig = methods
                        .iter()
                        .find(|(name, _)| format!("{class}::{name}") == wanted)
                        .map(|(_, sig)| sig.clone())
                        .expect("method deployed");
                    (sig, op_args(op))
                }
                Mechanism::Dyn => (
                    MethodSignature::new(class, method),
                    dyn_args.expect("built during interception"),
                ),
                Mechanism::Reflective => {
                    let key = format!("{class}::{method}");
                    let id = self.handler_table[&key];
                    (
                        self.sig_by_id[id].clone(),
                        dyn_args.expect("built during interception"),
                    )
                }
            };
            if self.slice == SliceLevel::R3 {
                std::hint::black_box((&sig, &args));
                std::hint::black_box(op.apply(company));
                continue;
            }
            // --- R4: repository search ---
            let pres = self.repo.lookup(&sig, LookupKind::Precondition);
            let posts = self.repo.lookup(&sig, LookupKind::Postcondition);
            let invs_before = self.repo.lookup(&sig, LookupKind::Invariant);
            let invs_after = self.repo.lookup(&sig, LookupKind::Invariant);
            counts.searches += 4;
            if self.slice == SliceLevel::R4 {
                std::hint::black_box((&pres, &posts, &invs_before, &invs_after));
                std::hint::black_box(op.apply(company));
                continue;
            }
            // --- R5: constraint checks ---
            let binding = MethodBinding {
                pres,
                posts,
                invs: invs_before,
            };
            std::hint::black_box(&invs_after);
            run_checks(&binding, company, op, &args, counts);
        }
    }
}

/// Executes the checks of one invocation against the company.
fn run_checks(
    binding: &MethodBinding,
    company: &mut Company,
    op: Op,
    args: &[Value],
    counts: &mut CheckCounts,
) {
    let method = MethodName::from(op.method_name());
    // Preconditions.
    for c in &binding.pres {
        counts.pres += 1;
        let ctx_obj = context_for(c, op);
        let mut access = CompanyAccess { company };
        let mut ctx =
            ValidationContext::for_method(ctx_obj, method.clone(), args.to_vec(), &mut access);
        if !c.implementation.validate(&mut ctx).unwrap_or(false) {
            counts.violations += 1;
        }
    }
    // Invariants before + postcondition @pre snapshots.
    let mut pre_states: BTreeMap<String, BTreeMap<String, Value>> = BTreeMap::new();
    for c in &binding.posts {
        let ctx_obj = context_for(c, op);
        let mut access = CompanyAccess { company };
        let mut ctx =
            ValidationContext::for_method(ctx_obj, method.clone(), args.to_vec(), &mut access);
        c.implementation.before_method_invocation(&mut ctx);
        pre_states.insert(c.name().to_string(), ctx.take_pre_state());
    }
    for c in &binding.invs {
        counts.invariants += 1;
        let ctx_obj = context_for(c, op);
        let mut access = CompanyAccess { company };
        let mut ctx = ValidationContext::for_invariant(ctx_obj, &mut access);
        if !c.implementation.validate(&mut ctx).unwrap_or(false) {
            counts.violations += 1;
        }
    }
    // Business logic.
    let result = op.apply(company);
    // Postconditions.
    for c in &binding.posts {
        counts.posts += 1;
        let ctx_obj = context_for(c, op);
        let mut access = CompanyAccess { company };
        let mut ctx =
            ValidationContext::for_method(ctx_obj, method.clone(), args.to_vec(), &mut access);
        ctx.set_result(Value::Int(result));
        if let Some(pre) = pre_states.remove(c.name().as_str()) {
            ctx.set_pre_state(pre);
        }
        if !c.implementation.validate(&mut ctx).unwrap_or(false) {
            counts.violations += 1;
        }
    }
    // Invariants after.
    for c in &binding.invs {
        counts.invariants += 1;
        let ctx_obj = context_for(c, op);
        let mut access = CompanyAccess { company };
        let mut ctx = ValidationContext::for_invariant(ctx_obj, &mut access);
        if !c.implementation.validate(&mut ctx).unwrap_or(false) {
            counts.violations += 1;
        }
    }
}

/// Boxes an operation's arguments the way the generic mechanisms see
/// them.
fn op_args(op: Op) -> Vec<Value> {
    match op {
        Op::RecordWork { proj, minutes, .. } => {
            vec![Value::Int(proj as i64), Value::Int(minutes)]
        }
        Op::SetWorkloadLimit { limit, .. } => vec![Value::Int(limit)],
        Op::ResetDay { .. } => Vec::new(),
        Op::TransferBudget { to, amount, .. } => {
            vec![Value::Int(to as i64), Value::Int(amount)]
        }
        Op::Audit => Vec::new(),
    }
}

/// Resolves a constraint's context object from the operation (the
/// lab's context preparation).
fn context_for(constraint: &RegisteredConstraint, op: Op) -> ObjectId {
    let class = constraint
        .context_class
        .as_ref()
        .map(|c| c.as_str())
        .unwrap_or("Company");
    match class {
        "Employee" => {
            let emp = match op {
                Op::RecordWork { emp, .. }
                | Op::SetWorkloadLimit { emp, .. }
                | Op::ResetDay { emp } => emp,
                _ => 0,
            };
            ObjectId::new("Employee", emp.to_string())
        }
        "Project" => {
            let proj = match op {
                Op::RecordWork { proj, .. } => proj,
                Op::TransferBudget { from, .. } => from,
                _ => 0,
            };
            ObjectId::new("Project", proj.to_string())
        }
        _ => ObjectId::new("Company", "0"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TargetClass as _TC;

    #[test]
    fn engine_binds_expected_checks_per_method() {
        let engine = RepoEngine::new(Mechanism::Dyn, true, SliceLevel::R5, false);
        let record = &engine.bindings["recordWork"];
        assert_eq!(record.pres.len(), 2);
        assert_eq!(record.posts.len(), 1);
        assert_eq!(record.invs.len(), 2);
        let audit = &engine.bindings["audit"];
        assert_eq!(audit.invs.len(), 2);
        assert!(audit.pres.is_empty());
    }

    #[test]
    fn repository_holds_all_78() {
        let engine = RepoEngine::new(Mechanism::Static, false, SliceLevel::R5, false);
        assert_eq!(engine.repo.len(), 78);
    }

    #[test]
    fn target_class_names_cover_dispatch_tables() {
        for tc in [_TC::Employee, _TC::Project, _TC::Company] {
            assert!(!tc.name().is_empty());
        }
    }
}
