//! The constraint-validation strategies under comparison (§2.2.1).

mod native;
mod repo;

use crate::model::{Company, Op};
use std::fmt;

/// Check/search counters of one scenario run (the per-run numbers of
/// §2.3.2: the paper's run triggered 4875 invariant, 1097
/// postcondition and 433 precondition checks over 1605 intercepted
/// methods and 7677 repository searches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckCounts {
    /// Intercepted method invocations.
    pub intercepted: u64,
    /// Precondition checks.
    pub pres: u64,
    /// Postcondition checks.
    pub posts: u64,
    /// Invariant checks (before + after).
    pub invariants: u64,
    /// Constraint-repository search operations.
    pub searches: u64,
    /// Violations observed (the scenario is designed for zero).
    pub violations: u64,
}

impl CheckCounts {
    /// Total checks of all kinds.
    pub fn total_checks(&self) -> u64 {
        self.pres + self.posts + self.invariants
    }
}

/// Interception mechanism of the repository strategies — the analogues
/// of AspectJ, JBoss AOP and `java.lang.reflect.Proxy` (§2.1.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Statically dispatched advice (AspectJ analogue): near-free
    /// interception, but expensive parameter extraction (the
    /// `getClass().getMethod(..)` lookup, §2.3.2).
    Static,
    /// Invocation objects through a dynamic interceptor chain (JBoss
    /// AOP analogue): heap-allocated invocation + virtual dispatch, but
    /// the method handle comes with the invocation.
    Dyn,
    /// Name-based dispatch through a handler table (Java-proxy
    /// analogue): reflective lookup per call.
    Reflective,
}

impl Mechanism {
    /// The three mechanisms.
    pub const ALL: [Mechanism; 3] = [Mechanism::Static, Mechanism::Dyn, Mechanism::Reflective];

    /// Paper-facing label.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Static => "AspectJ",
            Mechanism::Dyn => "JBossAOP",
            Mechanism::Reflective => "Java-Proxy",
        }
    }
}

/// How far down the runtime slices of Figure 2.3 a repository strategy
/// executes (cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SliceLevel {
    /// R1 only: the plain application.
    R1,
    /// + R2: invocation interception.
    R2,
    /// + R3: parameter extraction.
    R3,
    /// + R4: repository search.
    R4,
    /// + R5: constraint checks (the full strategy).
    R5,
}

/// A constraint-validation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The application without any constraint checks.
    NoChecks,
    /// Checks tangled into the business code (§2.1.1).
    Handcrafted,
    /// Checks encoded in statically dispatched interceptors — the
    /// AspectJ-Interceptor configuration (§2.2.1).
    InterceptorInline,
    /// Compiler-generated checking machinery with pre-state snapshots
    /// and contract inheritance — the JML analogue (§2.1.3).
    Generated,
    /// Explicit constraint classes behind a repository and a generic
    /// interception mechanism (§2.1.4/§2.1.5).
    Repository {
        /// Interception mechanism.
        mechanism: Mechanism,
        /// Optimized (cached) repository or search-per-invocation.
        cached: bool,
        /// Slice gate (use [`SliceLevel::R5`] for the full strategy).
        slice: SliceLevel,
    },
    /// Tool-generated, runtime-interpreted checks — the Dresden-OCL
    /// analogue (§2.1.2).
    Interpreted,
}

impl Strategy {
    /// The full repository strategy for a mechanism.
    pub fn repository(mechanism: Mechanism, cached: bool) -> Strategy {
        Strategy::Repository {
            mechanism,
            cached,
            slice: SliceLevel::R5,
        }
    }

    /// Paper-facing label.
    pub fn label(&self) -> String {
        match self {
            Strategy::NoChecks => "No checks".into(),
            Strategy::Handcrafted => "Handcrafted".into(),
            Strategy::InterceptorInline => "AspectJ-Interceptor".into(),
            Strategy::Generated => "JML".into(),
            Strategy::Repository {
                mechanism, cached, ..
            } => format!(
                "{}-Rep{}",
                mechanism.label(),
                if *cached { "-Opt" } else { "" }
            ),
            Strategy::Interpreted => "Dresden-OCL".into(),
        }
    }

    /// Prepares a reusable runner (repository construction, constraint
    /// parsing and registration happen once, like class-loading in the
    /// original).
    pub fn runner(&self) -> Runner {
        Runner::new(*self)
    }

    /// Convenience: prepare and run once.
    pub fn run(&self, company: &mut Company, ops: &[Op], counts: &mut CheckCounts) {
        self.runner().run(company, ops, counts);
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A prepared strategy executor.
pub struct Runner {
    strategy: Strategy,
    repo_engine: Option<repo::RepoEngine>,
}

impl fmt::Debug for Runner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Runner({})", self.strategy)
    }
}

impl Runner {
    /// Prepares the runner.
    pub fn new(strategy: Strategy) -> Self {
        let repo_engine = match strategy {
            Strategy::Repository {
                mechanism,
                cached,
                slice,
            } => Some(repo::RepoEngine::new(mechanism, cached, slice, false)),
            Strategy::Interpreted => Some(repo::RepoEngine::wrapper_based()),
            _ => None,
        };
        Self {
            strategy,
            repo_engine,
        }
    }

    /// The strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Executes the scenario once.
    pub fn run(&mut self, company: &mut Company, ops: &[Op], counts: &mut CheckCounts) {
        match self.strategy {
            Strategy::NoChecks => native::run_no_checks(company, ops),
            Strategy::Handcrafted => native::run_handcrafted(company, ops, counts),
            Strategy::InterceptorInline => native::run_interceptor_inline(company, ops, counts),
            Strategy::Generated => native::run_generated(company, ops, counts),
            Strategy::Repository { .. } | Strategy::Interpreted => self
                .repo_engine
                .as_mut()
                .expect("prepared")
                .run(company, ops, counts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::default_ops;

    fn run(strategy: Strategy) -> (CheckCounts, Company) {
        let ops = default_ops();
        let mut company = Company::generate();
        let mut counts = CheckCounts::default();
        strategy.run(&mut company, &ops, &mut counts);
        (counts, company)
    }

    #[test]
    fn all_strategies_produce_identical_final_state() {
        let (_, reference) = run(Strategy::NoChecks);
        for strategy in [
            Strategy::Handcrafted,
            Strategy::InterceptorInline,
            Strategy::Generated,
            Strategy::repository(Mechanism::Static, true),
            Strategy::repository(Mechanism::Dyn, true),
            Strategy::repository(Mechanism::Reflective, true),
            Strategy::repository(Mechanism::Dyn, false),
            Strategy::Interpreted,
        ] {
            let (counts, company) = run(strategy);
            assert_eq!(company, reference, "{strategy}");
            assert_eq!(counts.violations, 0, "{strategy}");
        }
    }

    #[test]
    fn checking_strategies_count_identical_checks() {
        let (reference, _) = run(Strategy::Handcrafted);
        assert!(reference.total_checks() > 0);
        for strategy in [
            Strategy::InterceptorInline,
            Strategy::Generated,
            Strategy::repository(Mechanism::Static, true),
            Strategy::repository(Mechanism::Reflective, false),
            Strategy::Interpreted,
        ] {
            let (counts, _) = run(strategy);
            assert_eq!(counts.pres, reference.pres, "{strategy}");
            assert_eq!(counts.posts, reference.posts, "{strategy}");
            assert_eq!(counts.invariants, reference.invariants, "{strategy}");
        }
    }

    #[test]
    fn slice_gating_stops_early() {
        let ops = default_ops();
        for slice in [SliceLevel::R2, SliceLevel::R3, SliceLevel::R4] {
            let mut company = Company::generate();
            let mut counts = CheckCounts::default();
            Strategy::Repository {
                mechanism: Mechanism::Dyn,
                cached: true,
                slice,
            }
            .run(&mut company, &ops, &mut counts);
            assert_eq!(counts.total_checks(), 0, "{slice:?} runs no checks");
            if slice < SliceLevel::R4 {
                assert_eq!(counts.searches, 0);
            } else {
                assert!(counts.searches > 0);
            }
        }
    }

    #[test]
    fn scan_mode_searches_cost_more_examinations() {
        // Verified indirectly: scan mode still yields the same counts
        // (searches count queries, not constraints examined).
        let (cached, _) = run(Strategy::repository(Mechanism::Dyn, true));
        let (scanned, _) = run(Strategy::repository(Mechanism::Dyn, false));
        assert_eq!(cached.searches, scanned.searches);
    }

    #[test]
    fn labels_match_paper_vocabulary() {
        assert_eq!(
            Strategy::repository(Mechanism::Dyn, true).label(),
            "JBossAOP-Rep-Opt"
        );
        assert_eq!(
            Strategy::repository(Mechanism::Reflective, false).label(),
            "Java-Proxy-Rep"
        );
        assert_eq!(Strategy::Interpreted.label(), "Dresden-OCL");
    }
}
