//! Natively compiled strategies: no-checks, handcrafted,
//! interceptor-inline (AspectJ) and generated (JML).

use super::CheckCounts;
use crate::constraints_def::{native_checks_for, OpCtx, PreSnapshot};
use crate::model::{Company, Op};

/// R1: the plain application.
pub fn run_no_checks(company: &mut Company, ops: &[Op]) {
    for &op in ops {
        std::hint::black_box(op.apply(company));
    }
}

#[inline(always)]
fn record_violation(counts: &mut CheckCounts, ok: bool) {
    if !ok {
        counts.violations += 1;
    }
}

/// Handcrafted checks (§2.1.1): constraint logic tangled directly into
/// each operation as literal `if` statements — the fastest checking
/// approach and the baseline of Figures 2.1/2.2.
pub fn run_handcrafted(company: &mut Company, ops: &[Op], counts: &mut CheckCounts) {
    for &op in ops {
        counts.intercepted += 1;
        match op {
            Op::RecordWork { emp, proj, minutes } => {
                // Preconditions.
                counts.pres += 2;
                record_violation(counts, minutes > 0);
                record_violation(counts, minutes <= 480);
                // Invariants before.
                counts.invariants += 2;
                record_violation(
                    counts,
                    company.employees[emp].daily_minutes <= company.employees[emp].workload_limit,
                );
                record_violation(
                    counts,
                    company.projects[proj].consumed_minutes
                        <= company.projects[proj].budget_minutes,
                );
                let daily_before = company.employees[emp].daily_minutes;
                let result = op.apply(company);
                // Postcondition.
                counts.posts += 1;
                record_violation(
                    counts,
                    company.employees[emp].daily_minutes == daily_before + minutes,
                );
                // Invariants after.
                counts.invariants += 2;
                record_violation(
                    counts,
                    company.employees[emp].daily_minutes <= company.employees[emp].workload_limit,
                );
                record_violation(
                    counts,
                    company.projects[proj].consumed_minutes
                        <= company.projects[proj].budget_minutes,
                );
                std::hint::black_box(result);
            }
            Op::SetWorkloadLimit { emp, limit } => {
                counts.pres += 1;
                record_violation(counts, limit >= 0);
                counts.invariants += 2;
                record_violation(
                    counts,
                    company.employees[emp].daily_minutes <= company.employees[emp].workload_limit,
                );
                record_violation(counts, company.employees[emp].workload_limit <= 1440);
                let result = op.apply(company);
                counts.posts += 1;
                record_violation(counts, company.employees[emp].workload_limit == limit);
                counts.invariants += 2;
                record_violation(
                    counts,
                    company.employees[emp].daily_minutes <= company.employees[emp].workload_limit,
                );
                record_violation(counts, company.employees[emp].workload_limit <= 1440);
                std::hint::black_box(result);
            }
            Op::ResetDay { emp } => {
                counts.invariants += 1;
                record_violation(counts, company.employees[emp].daily_minutes >= 0);
                let result = op.apply(company);
                counts.posts += 1;
                record_violation(counts, company.employees[emp].daily_minutes == 0);
                counts.invariants += 1;
                record_violation(counts, company.employees[emp].daily_minutes >= 0);
                std::hint::black_box(result);
            }
            Op::TransferBudget { from, to, amount } => {
                counts.pres += 2;
                record_violation(counts, amount > 0);
                record_violation(counts, amount <= 10_000);
                counts.invariants += 2;
                record_violation(counts, company.projects[from].budget_minutes >= 0);
                record_violation(
                    counts,
                    company
                        .projects
                        .iter()
                        .map(|p| p.budget_minutes)
                        .sum::<i64>()
                        == company.total_budget,
                );
                let total_before: i64 = company.projects.iter().map(|p| p.budget_minutes).sum();
                let result = op.apply(company);
                counts.posts += 2;
                record_violation(
                    counts,
                    company
                        .projects
                        .iter()
                        .map(|p| p.budget_minutes)
                        .sum::<i64>()
                        == total_before,
                );
                record_violation(counts, company.projects[to].budget_minutes == result);
                counts.invariants += 2;
                record_violation(counts, company.projects[from].budget_minutes >= 0);
                record_violation(
                    counts,
                    company
                        .projects
                        .iter()
                        .map(|p| p.budget_minutes)
                        .sum::<i64>()
                        == company.total_budget,
                );
                std::hint::black_box(result);
            }
            Op::Audit => {
                counts.invariants += 2;
                record_violation(
                    counts,
                    company
                        .projects
                        .iter()
                        .map(|p| p.budget_minutes)
                        .sum::<i64>()
                        == company.total_budget,
                );
                record_violation(
                    counts,
                    company
                        .projects
                        .iter()
                        .flat_map(|p| p.members.iter())
                        .all(|&m| m < company.employees.len()),
                );
                let result = op.apply(company);
                counts.invariants += 2;
                record_violation(
                    counts,
                    company
                        .projects
                        .iter()
                        .map(|p| p.budget_minutes)
                        .sum::<i64>()
                        == company.total_budget,
                );
                record_violation(
                    counts,
                    company
                        .projects
                        .iter()
                        .flat_map(|p| p.members.iter())
                        .all(|&m| m < company.employees.len()),
                );
                std::hint::black_box(result);
            }
        }
    }
}

/// Constraints encoded in statically dispatched interceptors — the
/// AspectJ-Interceptor configuration (§2.2.5): a generic advice wraps
/// every operation, resolving the method's checks from a static table
/// and executing them as direct function calls.
pub fn run_interceptor_inline(company: &mut Company, ops: &[Op], counts: &mut CheckCounts) {
    for &op in ops {
        counts.intercepted += 1;
        let checks = native_checks_for(op.method_name());
        let mut ctx = OpCtx {
            op,
            result: 0,
            pre: PreSnapshot::capture(op, company),
        };
        for c in checks.pres {
            counts.pres += 1;
            record_violation(counts, (c.check)(company, &ctx));
        }
        for c in checks.invs {
            counts.invariants += 1;
            record_violation(counts, (c.check)(company, &ctx));
        }
        ctx.result = op.apply(company);
        for c in checks.posts {
            counts.posts += 1;
            record_violation(counts, (c.check)(company, &ctx));
        }
        for c in checks.invs {
            counts.invariants += 1;
            record_violation(counts, (c.check)(company, &ctx));
        }
    }
}

/// One evaluated assertion of the generated (JML-style) machinery:
/// carries a descriptive label like the generated assertion objects of
/// the original tools.
struct JmlAssertion {
    label: String,
    holds: bool,
}

/// Compiler-generated checks — the JML analogue (§2.2.4): wrapper
/// methods snapshot the full pre-state of the touched objects, evaluate
/// each contract across the (three-level) specification-inheritance
/// chain — preconditions OR-composed, postconditions and invariants
/// AND-composed (§2.3.1) — and materialize assertion objects.
pub fn run_generated(company: &mut Company, ops: &[Op], counts: &mut CheckCounts) {
    const INHERITANCE_LEVELS: usize = 3;
    let mut assertions: Vec<JmlAssertion> = Vec::new();
    for &op in ops {
        counts.intercepted += 1;
        assertions.clear();
        let checks = native_checks_for(op.method_name());
        // Full pre-state snapshot (JML's \old machinery copies state).
        let old_employees = company.employees.clone();
        let old_projects = company.projects.clone();
        let mut ctx = OpCtx {
            op,
            result: 0,
            pre: PreSnapshot::capture(op, company),
        };
        for c in checks.pres {
            counts.pres += 1;
            // Preconditions of the inheritance chain are OR-composed.
            let mut holds = false;
            for level in 0..INHERITANCE_LEVELS {
                let level_holds = (c.check)(company, &ctx);
                assertions.push(JmlAssertion {
                    label: format!("{}@pre level {level}", c.name),
                    holds: level_holds,
                });
                holds |= level_holds;
            }
            record_violation(counts, holds);
        }
        for c in checks.invs {
            counts.invariants += 1;
            let mut holds = true;
            for level in 0..INHERITANCE_LEVELS {
                let level_holds = (c.check)(company, &ctx);
                assertions.push(JmlAssertion {
                    label: format!("{}@inv-entry level {level}", c.name),
                    holds: level_holds,
                });
                holds &= level_holds;
            }
            record_violation(counts, holds);
        }
        ctx.result = op.apply(company);
        for c in checks.posts {
            counts.posts += 1;
            let mut holds = true;
            for level in 0..INHERITANCE_LEVELS {
                let level_holds = (c.check)(company, &ctx);
                assertions.push(JmlAssertion {
                    label: format!("{}@post level {level}", c.name),
                    holds: level_holds,
                });
                holds &= level_holds;
            }
            record_violation(counts, holds);
        }
        for c in checks.invs {
            counts.invariants += 1;
            let mut holds = true;
            for level in 0..INHERITANCE_LEVELS {
                let level_holds = (c.check)(company, &ctx);
                assertions.push(JmlAssertion {
                    label: format!("{}@inv-exit level {level}", c.name),
                    holds: level_holds,
                });
                holds &= level_holds;
            }
            record_violation(counts, holds);
        }
        // The generated code keeps the old-state copies alive until the
        // method exit checks completed and reports failed assertions.
        debug_assert!(assertions.iter().all(|a| a.holds && !a.label.is_empty()));
        std::hint::black_box((&old_employees, &old_projects, &assertions));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::default_ops;

    #[test]
    fn handcrafted_and_inline_agree_on_counts() {
        let ops = default_ops();
        let mut c1 = Company::generate();
        let mut c2 = Company::generate();
        let mut n1 = CheckCounts::default();
        let mut n2 = CheckCounts::default();
        run_handcrafted(&mut c1, &ops, &mut n1);
        run_interceptor_inline(&mut c2, &ops, &mut n2);
        assert_eq!(n1, n2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn generated_counts_match_but_allocates_assertions() {
        let ops = default_ops();
        let mut c1 = Company::generate();
        let mut c2 = Company::generate();
        let mut n1 = CheckCounts::default();
        let mut n2 = CheckCounts::default();
        run_handcrafted(&mut c1, &ops, &mut n1);
        run_generated(&mut c2, &ops, &mut n2);
        assert_eq!(n1.total_checks(), n2.total_checks());
        assert_eq!(n2.violations, 0);
    }

    #[test]
    fn violations_are_detected() {
        // Force a violation: negative minutes precondition.
        let ops = vec![Op::RecordWork {
            emp: 0,
            proj: 0,
            minutes: -5,
        }];
        let mut company = Company::generate();
        let mut counts = CheckCounts::default();
        run_handcrafted(&mut company, &ops, &mut counts);
        assert!(counts.violations > 0);
    }
}
