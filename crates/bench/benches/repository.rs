//! Criterion micro-benchmarks for the constraint repository: the
//! §2.3.2 lookup study (cached) and the scan-per-invocation variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dedisys_constraints::{
    ConstraintMeta, ConstraintRepository, ContextPreparation, LookupKind, LookupMode,
    RegisteredConstraint, ValidationContext,
};
use dedisys_types::MethodSignature;
use std::sync::Arc;

fn build_repo(
    classes: u32,
    methods: u32,
    mode: LookupMode,
) -> (ConstraintRepository, Vec<MethodSignature>) {
    let mut repo = ConstraintRepository::new(mode);
    let mut sigs = Vec::new();
    for class in 0..classes {
        for method in 0..methods {
            repo.register(
                RegisteredConstraint::new(
                    ConstraintMeta::new(format!("C_{class}_{method}")),
                    Arc::new(|_: &mut ValidationContext<'_>| Ok(true)),
                )
                .context_class(format!("Class{class}"))
                .affects(
                    format!("Class{class}"),
                    format!("method{method}"),
                    ContextPreparation::CalledObject,
                ),
            )
            .expect("unique");
            sigs.push(MethodSignature::new(
                format!("Class{class}"),
                format!("method{method}"),
            ));
        }
    }
    (repo, sigs)
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("repository-lookup");
    for (classes, methods) in [(25u32, 10u32), (50, 25), (100, 50)] {
        let (mut repo, sigs) = build_repo(classes, methods, LookupMode::Cached);
        // Warm the cache.
        for sig in &sigs {
            repo.lookup(sig, LookupKind::Invariant);
        }
        group.bench_with_input(
            BenchmarkId::new("cached", format!("{classes}x{methods}")),
            &sigs,
            |b, sigs| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % sigs.len();
                    repo.lookup(&sigs[i], LookupKind::Invariant)
                })
            },
        );
    }
    // Scan mode over a 78-constraint repository (the paper's app size).
    let (mut repo, sigs) = build_repo(13, 6, LookupMode::Scan);
    group.bench_function("scan/78-constraints", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % sigs.len();
            repo.lookup(&sigs[i], LookupKind::Invariant)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
