//! Criterion micro-benchmark for the batch-validation pool: the
//! fig-par workload (64 CPU-bound constraints per write) under serial
//! and threaded evaluation (wall-clock complement to `repro fig-par`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dedisys_bench::fig_par;
use dedisys_core::ValidationParallelism;

fn bench_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch-validation");
    group.sample_size(10);
    for (label, parallelism) in [
        ("serial", ValidationParallelism::Serial),
        ("threads-2", ValidationParallelism::Threads(2)),
        ("threads-4", ValidationParallelism::Threads(4)),
        ("threads-8", ValidationParallelism::Threads(8)),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &parallelism,
            |b, &parallelism| b.iter(|| fig_par::measure(parallelism, label, 20, 10_000).batches),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallelism);
criterion_main!(benches);
