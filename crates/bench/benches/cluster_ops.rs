//! Criterion benchmarks of the middleware stack itself: wall-clock
//! cost of driving one operation through interception, CCM,
//! transactions and replication (the simulator's own efficiency, as
//! opposed to the virtual-time figures of `repro fig5-*`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dedisys_constraints::{
    expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
};
use dedisys_core::nodes;
use dedisys_core::{Cluster, ClusterBuilder};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{NodeId, ObjectId, SatisfactionDegree, Value};
use std::sync::Arc;

fn app() -> AppDescriptor {
    AppDescriptor::new("bench").with_class(
        ClassDescriptor::new("Item")
            .with_field("v", Value::Int(0))
            .with_field("max", Value::Int(1_000_000_000)),
    )
}

fn constraint() -> RegisteredConstraint {
    RegisteredConstraint::new(
        ConstraintMeta::new("Bounded").tradeable(SatisfactionDegree::PossiblySatisfied),
        Arc::new(ExprConstraint::parse("self.v <= self.max").unwrap()),
    )
    .context_class("Item")
    .affects("Item", "setV", ContextPreparation::CalledObject)
}

fn cluster(nodes: u32) -> (Cluster, ObjectId) {
    let mut cluster = ClusterBuilder::new(nodes, app())
        .constraint(constraint())
        .build()
        .unwrap();
    let id = ObjectId::new("Item", "i");
    let e = id.clone();
    cluster
        .run_tx(NodeId(0), move |c, tx| {
            c.create(NodeId(0), tx, EntityState::for_class(c.app(), &e)?)
        })
        .unwrap();
    (cluster, id)
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster-ops");
    for nodes in [1u32, 3] {
        let (mut cl, id) = cluster(nodes);
        group.bench_with_input(
            BenchmarkId::new("constrained-write", nodes),
            &id,
            |b, id| {
                let mut i = 0i64;
                b.iter(|| {
                    i += 1;
                    let id = id.clone();
                    cl.run_tx(NodeId(0), move |c, tx| {
                        c.set_field(NodeId(0), tx, &id, "v", Value::Int(i))
                    })
                    .unwrap()
                })
            },
        );
        let (mut cl, id) = cluster(nodes);
        group.bench_with_input(BenchmarkId::new("read", nodes), &id, |b, id| {
            b.iter(|| {
                let id = id.clone();
                cl.run_tx(NodeId(0), move |c, tx| c.get_field(NodeId(0), tx, &id, "v"))
                    .unwrap()
            })
        });
    }
    // Degraded-mode threat path (negotiation + identical-once dedup).
    let (mut cl, id) = cluster(2);
    cl.partition(&[nodes![0], nodes![1]]).unwrap();
    group.bench_function("degraded-threat-write", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            let id = id.clone();
            cl.run_tx(NodeId(0), move |c, tx| {
                c.set_field(NodeId(0), tx, &id, "v", Value::Int(i))
            })
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
