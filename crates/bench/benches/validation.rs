//! Criterion micro-benchmarks for the Chapter 2 validation strategies
//! (wall-clock complements to `repro fig2-1`/`fig2-2`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dedisys_validation::{default_ops, CheckCounts, Company, Mechanism, Strategy};

fn bench_strategies(c: &mut Criterion) {
    let ops = default_ops();
    let mut group = c.benchmark_group("validation-strategies");
    group.sample_size(10);
    let strategies = [
        Strategy::NoChecks,
        Strategy::Handcrafted,
        Strategy::InterceptorInline,
        Strategy::Generated,
        Strategy::repository(Mechanism::Static, true),
        Strategy::repository(Mechanism::Dyn, true),
        Strategy::repository(Mechanism::Reflective, true),
        Strategy::repository(Mechanism::Dyn, false),
        Strategy::Interpreted,
    ];
    for strategy in strategies {
        let mut runner = strategy.runner();
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &ops,
            |b, ops| {
                b.iter(|| {
                    let mut company = Company::generate();
                    let mut counts = CheckCounts::default();
                    runner.run(&mut company, ops, &mut counts);
                    counts
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
