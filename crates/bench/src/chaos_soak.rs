//! The `chaos-soak` driver behind `repro chaos-soak`: one seeded
//! chaos run (optionally traced to JSONL) or a multi-seed sweep.
//!
//! A fixed seed reproduces the run exactly — same fault schedule,
//! same workload, same virtual-time trajectory, byte-identical trace
//! file. The CI smoke job runs one seed twice and diffs the traces,
//! then sweeps a seed range asserting the invariant checker stays
//! silent.

use dedisys_chaos::{ChaosConfig, ChaosEngine, ChaosReport};
use dedisys_core::JsonlExporter;
use std::path::PathBuf;

/// CLI options of `repro chaos-soak`.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Master seed of a single run (ignored during sweeps).
    pub seed: u64,
    /// Cluster size.
    pub nodes: u32,
    /// Workload operations per run.
    pub ops: u64,
    /// Fault steps scheduled per run.
    pub faults: usize,
    /// Run seeds `0..n` instead of one seed.
    pub sweep: Option<u64>,
    /// JSONL trace destination (single runs only).
    pub trace: Option<PathBuf>,
    /// Drive membership through the adaptive failure-detection
    /// pipeline (φ-accrual + flap damping + weighted quorum) and draw
    /// faults from the extended vocabulary.
    pub detector: bool,
}

impl Default for SoakOptions {
    fn default() -> Self {
        Self {
            seed: 0,
            nodes: 4,
            ops: 300,
            faults: 24,
            sweep: None,
            trace: None,
            detector: false,
        }
    }
}

fn config(opts: &SoakOptions, seed: u64) -> ChaosConfig {
    ChaosConfig {
        nodes: opts.nodes,
        ops: opts.ops,
        faults: opts.faults,
        seed,
        detector: opts.detector,
        ..ChaosConfig::default()
    }
}

/// Runs the soak per `opts`; exits the process with status 1 on any
/// invariant violation.
pub fn run(opts: &SoakOptions) {
    match opts.sweep {
        Some(n) => sweep(opts, n),
        None => single(opts),
    }
}

fn single(opts: &SoakOptions) {
    let engine = ChaosEngine::new(config(opts, opts.seed)).expect("chaos engine");
    if let Some(path) = &opts.trace {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open trace file");
        engine
            .cluster()
            .telemetry()
            .attach(Box::new(JsonlExporter::new(Box::new(file))));
    }
    let report = engine.run().expect("chaos run");
    print_report(&report, opts);
    if !report.clean() {
        for v in &report.violations {
            eprintln!("invariant violation: {v}");
        }
        std::process::exit(1);
    }
}

fn sweep(opts: &SoakOptions, seeds: u64) {
    let mut dirty = 0u64;
    for seed in 0..seeds {
        let report = ChaosEngine::new(config(opts, seed))
            .expect("chaos engine")
            .run()
            .expect("chaos run");
        if !report.clean() {
            dirty += 1;
            for v in &report.violations {
                eprintln!("seed {seed}: invariant violation: {v}");
            }
        }
    }
    println!(
        "chaos-soak sweep{}: {seeds} seeds x {} ops x {} faults — {dirty} seed(s) with violations",
        if opts.detector { " (detector)" } else { "" },
        opts.ops,
        opts.faults
    );
    if dirty > 0 {
        std::process::exit(1);
    }
}

fn print_report(report: &ChaosReport, opts: &SoakOptions) {
    println!(
        "chaos-soak seed {} ({} nodes{})",
        report.seed,
        opts.nodes,
        if opts.detector { ", detector" } else { "" }
    );
    println!(
        "  workload: {} ok, {} failed (expected under faults)",
        report.ops_ok, report.ops_failed
    );
    println!(
        "  faults:   {} applied, {} skipped",
        report.faults_applied, report.faults_skipped
    );
    println!(
        "  2pc:      {} in-doubt transaction(s) resolved by presumed abort",
        report.in_doubt_resolved
    );
    println!(
        "  tx:       {} begun = {} committed + {} rolled back",
        report.final_stats.tx.begun,
        report.final_stats.tx.committed,
        report.final_stats.tx.rolled_back
    );
    println!(
        "  ship:     {} retries, {} exhausted, {} lag skips",
        report.final_stats.replication.ship_retries,
        report.final_stats.replication.ship_failures,
        report.final_stats.replication.lagged_skips
    );
    println!(
        "  virtual time: {:.3} s, {} trace events",
        report.final_stats.now_ns as f64 / 1e9,
        report.final_stats.events_emitted
    );
    println!(
        "  invariants: {}",
        if report.clean() {
            "all held".to_string()
        } else {
            format!("{} VIOLATION(S)", report.violations.len())
        }
    );
}
