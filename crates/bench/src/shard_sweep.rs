//! The `shard-sweep` driver behind `repro shard-sweep`: federated
//! goodput and cross-shard abort rate per shard count × offered load
//! × partition pattern.
//!
//! Every cell builds a [`FederatedCluster`] under the
//! consistency-first `RejectDegraded` routing policy: single-shard
//! writes arrive through the per-shard request planes (token-bucket
//! admission + priority dispatch, mode-gated), and a steady trickle of
//! cross-shard balance transfers exercises the federation 2PC — with
//! every seventh transfer losing its federation coordinator and
//! recovering by presumed abort. Mid-run the partition pattern splits
//! zero, one, or half of the shards, so the table shows how shard-local
//! degradation converts offered load into routing rejections and
//! cross-shard aborts while the healthy shards keep serving.
//!
//! The contract checked on every run (exit 1 otherwise): transferred
//! value is conserved across all shards in every cell (the chaos
//! engine's `xshard_conservation` invariant), every cell commits work,
//! the unpartitioned pattern rejects nothing, and the partitioned
//! patterns reject degraded-shard work.
//!
//! `--sweep K` runs the federation chaos soak instead — K seeds of the
//! cross-shard transfer workload under random shard partitions and
//! coordinator crashes — and exits 1 on any invariant violation.
//!
//! Everything runs on the federation's shared virtual clock; the same
//! seed reproduces the table — and a `--trace` JSONL file — byte for
//! byte.

use dedisys_chaos::{check_federation, FederationChaosConfig, FederationChaosEngine};
use dedisys_core::JsonlExporter;
use dedisys_federation::{FederatedCluster, RoutingPolicy, ShardId};
use dedisys_object::{AppDescriptor, ClassDescriptor};
use dedisys_types::{NodeId, ObjectId, PriorityClass, SimDuration, Value};
use std::path::PathBuf;

/// Shard counts swept by the table.
const SHARDS: &[u32] = &[2, 3, 4];

/// Offered single-shard loads, in requests per tick across the whole
/// federation.
const LOADS: &[u32] = &[4, 16];

/// Federation dispatch steps per tick (each step serves one plane
/// action per shard) — the simulated service capacity.
const STEPS_PER_TICK: u32 = 4;

/// Virtual length of one arrival tick.
const TICK: SimDuration = SimDuration::from_millis(10);

/// Items receiving single-shard writes.
const ITEMS: u32 = 16;

/// Accounts moving balance in cross-shard transfers.
const ACCOUNTS: u32 = 8;

/// Starting balance per account; `ACCOUNTS * BALANCE` is the conserved
/// total.
const BALANCE: i64 = 100;

/// CLI options of `repro shard-sweep`.
#[derive(Debug, Clone)]
pub struct ShardSweepOptions {
    /// Seed of the ring, the arrival mix, and (in `--sweep` mode) the
    /// chaos schedules.
    pub seed: u64,
    /// Nodes per shard.
    pub nodes: u32,
    /// Arrival ticks per table cell.
    pub ticks: u32,
    /// JSONL trace destination (cells append; federation bus only).
    pub trace: Option<PathBuf>,
    /// Run the K-seed federation chaos soak instead of the table.
    pub sweep: Option<u64>,
}

impl Default for ShardSweepOptions {
    fn default() -> Self {
        Self {
            seed: 0,
            nodes: 3,
            ticks: 30,
            trace: None,
            sweep: None,
        }
    }
}

/// Which shards the pattern partitions mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    None,
    SingleShard,
    HalfShards,
}

impl Pattern {
    fn label(self) -> &'static str {
        match self {
            Pattern::None => "none",
            Pattern::SingleShard => "one-shard",
            Pattern::HalfShards => "half-shards",
        }
    }

    /// The shards this pattern splits, for a federation of `shards`.
    fn targets(self, shards: u32) -> Vec<ShardId> {
        match self {
            Pattern::None => Vec::new(),
            Pattern::SingleShard => vec![ShardId(0)],
            Pattern::HalfShards => (0..(shards / 2).max(1)).map(ShardId).collect(),
        }
    }
}

/// Measured outcome of one cell.
struct CellOutcome {
    /// Completed plane requests per tick.
    goodput: f64,
    /// Cross-shard transfers begun / aborted.
    xshard_begun: u64,
    xshard_aborted: u64,
    /// Requests refused by the degraded-shard routing policy.
    rejected_degraded: u64,
    /// Conservation (and other federation invariant) violations.
    violations: usize,
}

impl CellOutcome {
    fn abort_rate(&self) -> f64 {
        if self.xshard_begun == 0 {
            return 0.0;
        }
        self.xshard_aborted as f64 / self.xshard_begun as f64
    }
}

fn sweep_app() -> AppDescriptor {
    AppDescriptor::new("shard-sweep")
        .with_class(ClassDescriptor::new("Item").with_field("n", Value::Int(0)))
        .with_class(ClassDescriptor::new("Account").with_field("v", Value::Int(0)))
}

fn item(i: u64) -> ObjectId {
    ObjectId::new("Item", format!("I-{}", i % u64::from(ITEMS)))
}

fn account(i: u64) -> ObjectId {
    ObjectId::new("Account", format!("A-{}", i % u64::from(ACCOUNTS)))
}

fn build_federation(opts: &ShardSweepOptions, shards: u32) -> FederatedCluster {
    let mut fed = FederatedCluster::builder(shards, opts.nodes, sweep_app())
        .seed(opts.seed)
        .policy(RoutingPolicy::RejectDegraded)
        .xshard_timeout(SimDuration::from_millis(50))
        .build()
        .expect("shard-sweep federation");
    if let Some(path) = &opts.trace {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open trace file");
        fed.telemetry()
            .attach(Box::new(JsonlExporter::new(Box::new(file))));
    }
    for i in 0..u64::from(ITEMS) {
        fed.create(&item(i)).expect("seed item");
    }
    for i in 0..u64::from(ACCOUNTS) {
        let id = account(i);
        fed.create(&id).expect("seed account");
        let target = id.clone();
        fed.run_routed(&id, |mut session| {
            session.set_field(&target, "v", Value::Int(BALANCE))?;
            session.commit()
        })
        .expect("fund account");
    }
    fed
}

/// The deterministic per-request mix (cf. `overload-sweep`): item and
/// class of the `i`-th arrival, derived from a splitmix-style hash of
/// the seed.
fn arrival(seed: u64, i: u64) -> (u64, PriorityClass) {
    let mut h = seed.wrapping_add(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    let class = match (h >> 8) % 10 {
        0 | 1 => PriorityClass::Critical,
        2..=6 => PriorityClass::Normal,
        _ => PriorityClass::Background,
    };
    (h, class)
}

/// The committed balance of `id` on its owning shard.
fn balance(fed: &FederatedCluster, id: &ObjectId) -> Option<i64> {
    let owner = fed.map().shard_of(id);
    let node = fed.coordinator_node(owner)?;
    match fed.shard(owner).entity_on(node, id)?.field("v") {
        Value::Int(v) => Some(*v),
        _ => None,
    }
}

/// One cross-shard transfer; every seventh loses its coordinator and
/// is recovered by presumed abort at a later tick.
fn transfer(fed: &mut FederatedCluster, counter: u64) {
    let a = account(counter);
    let b = account(counter + 1 + counter / u64::from(ACCOUNTS));
    if a == b {
        return;
    }
    let (Some(cur_a), Some(cur_b)) = (balance(fed, &a), balance(fed, &b)) else {
        return;
    };
    let amount = 1 + (counter % 5) as i64;
    let xtx = fed.xshard_begin();
    let staged = fed
        .xshard_set_field(xtx, &a, "v", Value::Int(cur_a - amount))
        .and_then(|_| fed.xshard_set_field(xtx, &b, "v", Value::Int(cur_b + amount)));
    if staged.is_err() {
        let _ = fed.xshard_abort(xtx);
        return;
    }
    if fed.xshard_prepare(xtx).is_err() {
        return;
    }
    if counter % 7 == 6 {
        let _ = fed.crash_coordinator(xtx);
    } else {
        let _ = fed.xshard_commit(xtx);
    }
}

fn run_cell(opts: &ShardSweepOptions, shards: u32, load: u32, pattern: Pattern) -> CellOutcome {
    let mut fed = build_federation(opts, shards);
    let partition_tick = opts.ticks / 3;
    let start = fed.clock().now();
    let mut arrivals = 0u64;
    let mut transfers = 0u64;
    for tick in 0..opts.ticks {
        if tick == partition_tick {
            for s in pattern.targets(shards) {
                let cut = opts.nodes / 2 + 1;
                let majority: Vec<NodeId> = (0..cut).map(NodeId).collect();
                let minority: Vec<NodeId> = (cut..opts.nodes).map(NodeId).collect();
                if !minority.is_empty() {
                    fed.shard_mut(s)
                        .partition(&[majority, minority])
                        .expect("pattern partition");
                }
            }
        }
        for _ in 0..load {
            let (h, class) = arrival(opts.seed, arrivals);
            arrivals += 1;
            let id = item(h);
            let target = id.clone();
            let payload = (h >> 16) as i64 % 1_000;
            let _ = fed.submit(&id, class, move |mut session| {
                session.set_field(&target, "n", Value::Int(payload))?;
                session.commit()
            });
        }
        for _ in 0..2 {
            transfer(&mut fed, transfers);
            transfers += 1;
        }
        for _ in 0..STEPS_PER_TICK {
            if !fed.step() {
                break;
            }
        }
        fed.clock().advance_to(start + TICK * u64::from(tick + 1));
        fed.resolve_xshard_in_doubt();
    }
    // Drain: serve the backlog, then let every pending presumed-abort
    // deadline pass.
    fed.run_until_idle();
    fed.clock().advance(SimDuration::from_millis(100));
    fed.resolve_xshard_in_doubt();

    let accounts: Vec<ObjectId> = (0..u64::from(ACCOUNTS)).map(account).collect();
    let violations = check_federation(&fed, &accounts, BALANCE * i64::from(ACCOUNTS));
    for v in &violations {
        eprintln!(
            "shard-sweep: {shards} shards, load {load}, {}: {v}",
            pattern.label()
        );
    }
    let completed: u64 = (0..shards)
        .map(|s| fed.plane(ShardId(s)).stats().total().completed)
        .sum();
    let stats = fed.stats();
    CellOutcome {
        goodput: completed as f64 / f64::from(opts.ticks),
        xshard_begun: stats.xshard_begun,
        xshard_aborted: stats.xshard_aborted,
        rejected_degraded: stats.rejected_degraded,
        violations: violations.len(),
    }
}

/// The K-seed federation chaos soak behind `--sweep`.
fn run_soak(opts: &ShardSweepOptions, seeds: u64) {
    println!("shard-sweep soak: {seeds} seed(s) of the cross-shard transfer chaos workload");
    let mut failures = 0u64;
    for seed in 0..seeds {
        let report = FederationChaosEngine::new(FederationChaosConfig {
            seed: opts.seed.wrapping_add(seed),
            nodes_per_shard: opts.nodes,
            ..FederationChaosConfig::default()
        })
        .expect("soak federation")
        .run();
        let verdict = if report.clean() { "clean" } else { "VIOLATED" };
        println!(
            "  seed {:>4}: {} transfers ({} committed, {} aborted, {} presumed), {} partition(s), {} coordinator crash(es): {verdict}",
            report.seed,
            report.transfers,
            report.committed,
            report.aborted,
            report.presumed_aborted,
            report.partitions,
            report.coordinator_crashes,
        );
        for v in &report.violations {
            eprintln!("    {v}");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("shard-sweep soak: {failures} invariant violation(s)");
        std::process::exit(1);
    }
    println!("  verdict: value conserved and no orphaned cross-shard locks on every seed");
}

/// Runs the sweep (or the `--sweep` soak) per `opts`; exits the
/// process with status 1 when the contract fails.
pub fn run(opts: &ShardSweepOptions) {
    if let Some(seeds) = opts.sweep {
        run_soak(opts, seeds);
        return;
    }
    println!(
        "shard-sweep seed {} ({} nodes/shard, {} ticks, {} dispatch steps/tick)",
        opts.seed, opts.nodes, opts.ticks, STEPS_PER_TICK
    );
    println!(
        "  goodput = completed plane requests per tick; xshard aborts include presumed aborts"
    );
    println!("  shards | load/tick | partition    | goodput | xshard begun | xshard abort-rate | rejected");
    let mut failures = 0u64;
    for &shards in SHARDS {
        for &load in LOADS {
            for pattern in [Pattern::None, Pattern::SingleShard, Pattern::HalfShards] {
                let cell = run_cell(opts, shards, load, pattern);
                println!(
                    "  {shards:>6} | {load:>9} | {:<12} | {:>7.1} | {:>12} | {:>17.2} | {:>8}",
                    pattern.label(),
                    cell.goodput,
                    cell.xshard_begun,
                    cell.abort_rate(),
                    cell.rejected_degraded,
                );
                failures += cell.violations as u64;
                if cell.goodput <= 0.0 {
                    eprintln!(
                        "shard-sweep: {shards} shards, load {load}, {}: nothing completed",
                        pattern.label()
                    );
                    failures += 1;
                }
                if pattern == Pattern::None && cell.rejected_degraded > 0 {
                    eprintln!(
                        "shard-sweep: {shards} shards, load {load}: rejected {} request(s) with no partition",
                        cell.rejected_degraded
                    );
                    failures += 1;
                }
                if pattern != Pattern::None && cell.rejected_degraded == 0 {
                    eprintln!(
                        "shard-sweep: {shards} shards, load {load}, {}: partitioned shards rejected nothing",
                        pattern.label()
                    );
                    failures += 1;
                }
            }
        }
    }
    println!(
        "  verdict: {}",
        if failures == 0 {
            "value conserved in every cell; degraded shards reject, healthy shards serve"
                .to_string()
        } else {
            format!("{failures} FAILURE(S)")
        }
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
