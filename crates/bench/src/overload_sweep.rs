//! The `overload-sweep` driver behind `repro overload-sweep`: goodput
//! and Critical-class tail latency under rising offered load, with
//! the request plane (token-bucket admission, priority queues,
//! deadline shedding) against a no-admission FIFO baseline on the
//! same workload.
//!
//! Both sides see identical arrivals: every tick, `load` requests
//! spread round-robin over the nodes with a seed-derived 20/50/30
//! Critical/Normal/Background class mix, and at most
//! `SERVICE_PER_TICK` requests *execute* before the virtual clock
//! jumps to the next tick boundary. The baseline queues everything in
//! one unbounded FIFO (no classes, no admission, no deadlines) — every
//! arrival eventually executes, however stale. The plane refuses at
//! admission past the token rate, bounds each node's queues, serves
//! strictly by class, and drops expired work before paying for it.
//!
//! The table prints, per offered load × {healthy, degraded} × side:
//! goodput (completed Critical+Normal requests per tick) and the
//! Critical p99 latency in virtual milliseconds. The contract checked
//! on every run (exit 1 otherwise): at the highest offered load the
//! plane's Critical p99 is *strictly* below the baseline's, in both
//! modes — the paper-level claim that admission control plus priority
//! shedding protects critical work under overload, not just on
//! average but in the tail.
//!
//! Everything runs on the virtual clock; the same seed reproduces the
//! table — and a `--trace` JSONL file — byte for byte.

use dedisys_core::{nodes, Cluster, ClusterBuilder, JsonlExporter, RequestPlane, Session};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{NodeId, ObjectId, PriorityClass, SimDuration, Value};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Offered loads swept by the table, in requests per tick. Service
/// capacity is [`SERVICE_PER_TICK`]: the first row is underload, the
/// last is ~8x sustained overload.
const LOADS: &[u32] = &[4, 16, 64];

/// Requests that may *execute* per tick, across all nodes — the
/// simulated service capacity. Shedding is deliberately not charged
/// against it: dropping work cheaply instead of executing it late is
/// the mechanism under test.
const SERVICE_PER_TICK: u64 = 8;

/// Virtual length of one arrival tick.
const TICK: SimDuration = SimDuration::from_millis(10);

/// CLI options of `repro overload-sweep`.
#[derive(Debug, Clone)]
pub struct OverloadOptions {
    /// Seed of the class/node mixing draws.
    pub seed: u64,
    /// Cluster size.
    pub nodes: u32,
    /// Arrival ticks per table cell.
    pub ticks: u32,
    /// JSONL trace destination (cells append).
    pub trace: Option<PathBuf>,
}

impl Default for OverloadOptions {
    fn default() -> Self {
        Self {
            seed: 0,
            nodes: 3,
            ticks: 40,
            trace: None,
        }
    }
}

/// Measured outcome of one cell (one side, one load, one mode).
struct CellOutcome {
    /// Completed Critical+Normal requests per tick.
    goodput: f64,
    /// Critical-class p99 latency (admission to completion).
    critical_p99: SimDuration,
    /// Requests completed, all classes.
    completed: u64,
    /// Requests refused at admission or shed/expired in the queue
    /// (always 0 for the baseline).
    dropped: u64,
}

/// One completed request's class and latency, recorded by the request
/// closure itself so both sides measure identically.
type LatencySink = Arc<Mutex<Vec<(PriorityClass, SimDuration)>>>;

fn sweep_app() -> AppDescriptor {
    AppDescriptor::new("overload-sweep")
        .with_class(ClassDescriptor::new("Item").with_field("n", Value::Int(0)))
}

fn build_cluster(opts: &OverloadOptions, degraded: bool) -> Cluster {
    let mut cluster = ClusterBuilder::new(opts.nodes, sweep_app())
        .build()
        .expect("overload-sweep cluster");
    if let Some(path) = &opts.trace {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open trace file");
        cluster
            .telemetry()
            .attach(Box::new(JsonlExporter::new(Box::new(file))));
    }
    for i in 0..4 {
        let id = ObjectId::new("Item", format!("I-{i}"));
        cluster
            .run_tx(NodeId(0), move |c, tx| {
                c.create(NodeId(0), tx, EntityState::for_class(c.app(), &id)?)
            })
            .expect("seed item");
    }
    if degraded {
        let split: Vec<NodeId> = (1..opts.nodes).map(NodeId).collect();
        cluster
            .partition(&[nodes![0], split])
            .expect("degrade cluster");
    }
    cluster
}

/// The deterministic per-request mix: node, class and payload for the
/// `i`-th arrival of a run, derived from a splitmix-style hash of the
/// seed so different seeds shuffle the interleaving.
fn arrival(opts: &OverloadOptions, i: u64) -> (NodeId, PriorityClass, i64) {
    let mut h = opts
        .seed
        .wrapping_add(i)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    let node = NodeId((h % u64::from(opts.nodes)) as u32);
    let class = match (h >> 8) % 10 {
        0 | 1 => PriorityClass::Critical,
        2..=6 => PriorityClass::Normal,
        _ => PriorityClass::Background,
    };
    (node, class, (h >> 16) as i64 % 1_000)
}

/// The request body both sides run: one committed write, stamping its
/// own admission-to-completion latency into the shared sink.
fn request_work(
    cluster: &Cluster,
    sink: &LatencySink,
    class: PriorityClass,
    payload: i64,
) -> impl for<'a> FnOnce(Session<'a>) -> dedisys_types::Result<()> + 'static {
    let clock = cluster.clock().clone();
    let submitted = clock.now();
    let sink = Arc::clone(sink);
    let id = ObjectId::new("Item", format!("I-{}", payload.rem_euclid(4)));
    move |mut session| {
        session.set_field(&id, "n", Value::Int(payload))?;
        session.commit()?;
        sink.lock()
            .unwrap()
            .push((class, clock.now().since(submitted)));
        Ok(())
    }
}

fn percentile_99(mut latencies: Vec<SimDuration>) -> SimDuration {
    if latencies.is_empty() {
        return SimDuration::ZERO;
    }
    latencies.sort_unstable();
    latencies[(latencies.len() - 1) * 99 / 100]
}

fn cell_outcome(opts: &OverloadOptions, sink: &LatencySink, dropped: u64) -> CellOutcome {
    let recorded = sink.lock().unwrap();
    let good = recorded
        .iter()
        .filter(|(c, _)| *c != PriorityClass::Background)
        .count() as f64;
    let criticals: Vec<SimDuration> = recorded
        .iter()
        .filter(|(c, _)| *c == PriorityClass::Critical)
        .map(|(_, l)| *l)
        .collect();
    CellOutcome {
        goodput: good / f64::from(opts.ticks),
        critical_p99: percentile_99(criticals),
        completed: recorded.len() as u64,
        dropped,
    }
}

/// One run with the request plane in front: admission, priority
/// dispatch, deadline shedding.
fn run_plane(opts: &OverloadOptions, load: u32, degraded: bool) -> CellOutcome {
    let mut cluster = build_cluster(opts, degraded);
    let mut plane = RequestPlane::new();
    let sink: LatencySink = Arc::default();
    let start = cluster.clock().now();
    let mut arrivals = 0u64;
    for tick in 0..opts.ticks {
        for _ in 0..load {
            let (node, class, payload) = arrival(opts, arrivals);
            arrivals += 1;
            let work = request_work(&cluster, &sink, class, payload);
            let _ = plane.submit(&mut cluster, node, class, work);
        }
        let served_before = plane.stats().total().completed;
        while plane.stats().total().completed < served_before + SERVICE_PER_TICK
            && plane.step(&mut cluster)
        {}
        cluster
            .clock()
            .advance_to(start + TICK * u64::from(tick + 1));
    }
    // Sustained-overload tail: everything still queued either completes
    // or expires now that arrivals stopped.
    plane.run_until_idle(&mut cluster);
    let t = plane.stats().total();
    cell_outcome(opts, &sink, t.rejected + t.shed + t.deadline_missed)
}

/// The no-admission baseline: one unbounded FIFO, every arrival
/// executes eventually, in arrival order, whatever its class or age.
fn run_baseline(opts: &OverloadOptions, load: u32, degraded: bool) -> CellOutcome {
    type QueuedWork = Box<dyn for<'a> FnOnce(Session<'a>) -> dedisys_types::Result<()>>;
    let mut cluster = build_cluster(opts, degraded);
    let mut fifo: VecDeque<(NodeId, QueuedWork)> = VecDeque::new();
    let sink: LatencySink = Arc::default();
    let start = cluster.clock().now();
    let mut arrivals = 0u64;
    let serve = |cluster: &mut Cluster, fifo: &mut VecDeque<(NodeId, QueuedWork)>| {
        for _ in 0..SERVICE_PER_TICK {
            let Some((node, work)) = fifo.pop_front() else {
                break;
            };
            let _ = work(cluster.session(node));
        }
    };
    for tick in 0..opts.ticks {
        for _ in 0..load {
            let (node, class, payload) = arrival(opts, arrivals);
            arrivals += 1;
            let work = request_work(&cluster, &sink, class, payload);
            fifo.push_back((node, Box::new(work)));
        }
        serve(&mut cluster, &mut fifo);
        cluster
            .clock()
            .advance_to(start + TICK * u64::from(tick + 1));
    }
    // Drain the backlog at the same service rate — late, but served.
    while !fifo.is_empty() {
        serve(&mut cluster, &mut fifo);
        cluster.clock().advance(TICK);
    }
    cell_outcome(opts, &sink, 0)
}

fn fmt_ms(d: SimDuration) -> String {
    format!("{:.1}", d.as_nanos() as f64 / 1_000_000.0)
}

/// Runs the sweep per `opts`; exits the process with status 1 when
/// the plane fails to strictly beat the baseline's Critical p99 at
/// the highest offered load.
pub fn run(opts: &OverloadOptions) {
    println!(
        "overload-sweep seed {} ({} nodes, {} ticks, {} executions/tick)",
        opts.seed, opts.nodes, opts.ticks, SERVICE_PER_TICK
    );
    println!("  goodput = completed Critical+Normal per tick; p99 in virtual ms");
    println!(
        "  load/tick | mode     | baseline goodput | baseline crit-p99 | plane goodput | plane crit-p99 | plane dropped"
    );
    let mut failures = 0u64;
    let top_load = *LOADS.last().expect("nonempty load sweep");
    for &load in LOADS {
        for degraded in [false, true] {
            let mode = if degraded { "degraded" } else { "healthy" };
            let baseline = run_baseline(opts, load, degraded);
            let plane = run_plane(opts, load, degraded);
            println!(
                "  {load:>9} | {mode:<8} | {:>16.1} | {:>15}ms | {:>13.1} | {:>12}ms | {:>13}",
                baseline.goodput,
                fmt_ms(baseline.critical_p99),
                plane.goodput,
                fmt_ms(plane.critical_p99),
                plane.dropped,
            );
            if load == top_load && plane.critical_p99 >= baseline.critical_p99 {
                eprintln!(
                    "overload-sweep: load {load} {mode}: plane Critical p99 {}ms >= baseline {}ms",
                    fmt_ms(plane.critical_p99),
                    fmt_ms(baseline.critical_p99)
                );
                failures += 1;
            }
            if baseline.completed == 0 || plane.completed == 0 {
                eprintln!("overload-sweep: load {load} {mode}: a side completed nothing");
                failures += 1;
            }
        }
    }
    println!(
        "  verdict: {}",
        if failures == 0 {
            "plane Critical p99 strictly below the no-admission baseline at the top load"
                .to_string()
        } else {
            format!("{failures} FAILURE(S)")
        }
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
