//! # dedisys-bench
//!
//! The reproduction harness: one entry point per table and figure of
//! the dissertation's evaluation. The `repro` binary
//! (`cargo run -p dedisys-bench --bin repro -- <experiment>`) prints
//! each experiment's rows next to the values the paper reports;
//! EXPERIMENTS.md records a full run.
//!
//! * [`ch2`] — the constraint-validation comparison (Figures 2.1–2.6
//!   and the lookup-time study), measured in wall-clock time.
//! * [`ch5`] — the middleware evaluation (Figures 5.1–5.4, 5.6, 5.8
//!   and the §5.5 improvement studies), measured in deterministic
//!   virtual time.
//! * [`chaos_soak`] — the seeded chaos soak (`repro chaos-soak`):
//!   random fault schedules against the full middleware stack with
//!   invariant checking after every injected fault.
//! * [`fig_par`] — the batch-validation pool study (`repro fig-par`):
//!   wall-clock serial vs parallel speedup with the byte-identical
//!   trace contract checked on every run.
//! * [`fig_compile`] — the constraint-engine study (`repro
//!   fig-compile`): interpreted vs compiled vs compiled+verdict-cache
//!   validation cost in deterministic virtual time, with the
//!   verdict-transparency contract checked on every run.
//! * [`flap_sweep`] — the failure-detection damping study (`repro
//!   flap-sweep`): spurious mode transitions under link flapping,
//!   fixed-timeout + passthrough baseline vs the φ-accrual detector
//!   with flap-damped view stabilization, per flap period and
//!   damping window.
//! * [`overload_sweep`] — the request-plane overload study (`repro
//!   overload-sweep`): goodput and Critical-class p99 latency per
//!   offered load and system mode, token-bucket admission + priority
//!   shedding vs a no-admission FIFO baseline, with the
//!   strictly-better-tail contract checked on every run.
//! * [`shard_sweep`] — the federation study (`repro shard-sweep`):
//!   goodput and cross-shard abort rate per shard count, offered load
//!   and partition pattern under the `RejectDegraded` routing policy,
//!   with the cross-shard value-conservation contract checked in
//!   every cell; `--sweep K` runs the K-seed cross-shard chaos soak.

pub mod ch2;
pub mod ch5;
pub mod chaos_soak;
pub mod fig_compile;
pub mod fig_par;
pub mod flap_sweep;
pub mod overload_sweep;
pub mod shard_sweep;
pub mod table;
