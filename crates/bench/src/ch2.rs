//! Chapter 2 reproduction: constraint validation approaches
//! (Figures 2.1–2.6 and the §2.3.2 lookup study), measured in
//! wall-clock time over the project-management reference application.

use crate::table::{f2, print_table};
use dedisys_validation::{
    lookup_time_study, measure_wall_clock, MeasureReport, Mechanism, SliceLevel, Strategy,
};

/// One comparison row.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Strategy label (paper vocabulary).
    pub label: String,
    /// Measured nanoseconds per scenario run.
    pub nanos_per_run: f64,
    /// Overhead factor vs the baseline.
    pub overhead: f64,
    /// The value the paper reports (where applicable).
    pub paper: Option<f64>,
}

fn runs_for(strategy: Strategy) -> (u32, u32) {
    // (warmup, measured) — slower strategies get fewer runs.
    match strategy {
        Strategy::Interpreted => (3, 10),
        Strategy::Repository { cached: false, .. } => (3, 10),
        _ => (10, 40),
    }
}

fn measure(strategy: Strategy) -> MeasureReport {
    let (warmup, runs) = runs_for(strategy);
    measure_wall_clock(strategy, warmup, runs)
}

fn rows_vs_baseline(
    baseline: Strategy,
    strategies: &[(Strategy, Option<f64>)],
) -> Vec<OverheadRow> {
    let base = measure(baseline);
    let mut rows = vec![OverheadRow {
        label: format!("{} (baseline)", baseline.label()),
        nanos_per_run: base.nanos_per_run(),
        overhead: 1.0,
        paper: Some(1.0),
    }];
    for (strategy, paper) in strategies {
        let report = measure(*strategy);
        rows.push(OverheadRow {
            label: strategy.label(),
            nanos_per_run: report.nanos_per_run(),
            overhead: report.overhead_vs(&base),
            paper: *paper,
        });
    }
    rows
}

fn print_rows(title: &str, rows: &[OverheadRow]) {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.0}", r.nanos_per_run),
                f2(r.overhead),
                r.paper.map(f2).unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "approach",
            "ns/run",
            "overhead (measured)",
            "overhead (paper)",
        ],
        &table_rows,
    );
}

/// Figure 2.1 — the fastest approaches, overhead relative to
/// handcrafted constraints.
pub fn fig2_1() -> Vec<OverheadRow> {
    rows_vs_baseline(
        Strategy::Handcrafted,
        &[
            (Strategy::InterceptorInline, Some(1.06)),
            (Strategy::repository(Mechanism::Dyn, true), Some(7.99)),
            (
                Strategy::repository(Mechanism::Reflective, true),
                Some(9.54),
            ),
            (Strategy::repository(Mechanism::Static, true), Some(10.86)),
        ],
    )
}

/// Figure 2.2 — the slowest approaches, overhead relative to
/// handcrafted constraints.
pub fn fig2_2() -> Vec<OverheadRow> {
    rows_vs_baseline(
        Strategy::Handcrafted,
        &[
            (
                Strategy::repository(Mechanism::Reflective, false),
                Some(48.03),
            ),
            (Strategy::Generated, Some(61.37)),
            (Strategy::repository(Mechanism::Static, false), Some(70.71)),
            (Strategy::repository(Mechanism::Dyn, false), Some(103.17)),
            (Strategy::Interpreted, Some(405.71)),
        ],
    )
}

/// Figure 2.3 — the runtime slices R1…R5 of one full repository
/// strategy (JBossAOP-Rep-Opt), as cumulative measurements.
pub fn fig2_3() -> Vec<OverheadRow> {
    let base = measure(Strategy::NoChecks);
    let mut rows = vec![OverheadRow {
        label: "R1 (application)".into(),
        nanos_per_run: base.nanos_per_run(),
        overhead: 1.0,
        paper: None,
    }];
    for (slice, label) in [
        (SliceLevel::R2, "R1+R2 (interception)"),
        (SliceLevel::R3, "R1..R3 (param extraction)"),
        (SliceLevel::R4, "R1..R4 (repository search)"),
        (SliceLevel::R5, "R1..R5 (constraint checks)"),
    ] {
        let report = measure(Strategy::Repository {
            mechanism: Mechanism::Dyn,
            cached: true,
            slice,
        });
        rows.push(OverheadRow {
            label: label.into(),
            nanos_per_run: report.nanos_per_run(),
            overhead: report.overhead_vs(&base),
            paper: None,
        });
    }
    rows
}

/// Figure 2.4 — search overhead (R1+R2+R3+R4)/R1 per mechanism, for
/// the optimized and the search-per-invocation repository.
pub fn fig2_4() -> Vec<OverheadRow> {
    let base = measure(Strategy::NoChecks);
    let paper: std::collections::HashMap<(&str, bool), f64> = [
        (("Java-Proxy", true), 65.38),
        (("JBossAOP", true), 70.38),
        (("AspectJ", true), 163.38),
        (("Java-Proxy", false), 1412.62),
        (("JBossAOP", false), 3389.62),
        (("AspectJ", false), 2224.50),
    ]
    .into_iter()
    .collect();
    let mut rows = Vec::new();
    for cached in [true, false] {
        for mechanism in Mechanism::ALL {
            let report = measure(Strategy::Repository {
                mechanism,
                cached,
                slice: SliceLevel::R4,
            });
            rows.push(OverheadRow {
                label: format!(
                    "{} ({})",
                    mechanism.label(),
                    if cached {
                        "optimized"
                    } else {
                        "search/invocation"
                    }
                ),
                nanos_per_run: report.nanos_per_run(),
                overhead: report.overhead_vs(&base),
                paper: paper.get(&(mechanism.label(), cached)).copied(),
            });
        }
    }
    rows
}

/// Figure 2.5 — interception overhead (R1+R2)/R1 per mechanism.
pub fn fig2_5() -> Vec<OverheadRow> {
    slice_rows(
        SliceLevel::R2,
        &[("AspectJ", 2.38), ("JBossAOP", 9.25), ("Java-Proxy", 28.13)],
    )
}

/// Figure 2.6 — interception + parameter extraction (R1+R2+R3)/R1 per
/// mechanism (note the order flip vs Figure 2.5).
pub fn fig2_6() -> Vec<OverheadRow> {
    slice_rows(
        SliceLevel::R3,
        &[
            ("JBossAOP", 19.50),
            ("Java-Proxy", 36.62),
            ("AspectJ", 98.26),
        ],
    )
}

fn slice_rows(slice: SliceLevel, paper: &[(&str, f64)]) -> Vec<OverheadRow> {
    let base = measure(Strategy::NoChecks);
    Mechanism::ALL
        .into_iter()
        .map(|mechanism| {
            let report = measure(Strategy::Repository {
                mechanism,
                cached: true,
                slice,
            });
            OverheadRow {
                label: mechanism.label().to_owned(),
                nanos_per_run: report.nanos_per_run(),
                overhead: report.overhead_vs(&base),
                paper: paper
                    .iter()
                    .find(|(l, _)| *l == mechanism.label())
                    .map(|(_, v)| *v),
            }
        })
        .collect()
}

/// Runs and prints one chapter-2 experiment.
pub fn run(id: &str) {
    match id {
        "fig2-1" => print_rows(
            "Figure 2.1 — fastest approaches (vs handcrafted)",
            &fig2_1(),
        ),
        "fig2-2" => print_rows(
            "Figure 2.2 — slowest approaches (vs handcrafted)",
            &fig2_2(),
        ),
        "fig2-3" => print_rows("Figure 2.3 — runtime slices (JBossAOP-Rep-Opt)", &fig2_3()),
        "fig2-4" => print_rows("Figure 2.4 — search overhead (R1..R4)/R1", &fig2_4()),
        "fig2-5" => print_rows("Figure 2.5 — interception overhead (R1+R2)/R1", &fig2_5()),
        "fig2-6" => print_rows(
            "Figure 2.6 — interception + parameter extraction (R1..R3)/R1",
            &fig2_6(),
        ),
        "tab2-lookup" => {
            let rows: Vec<Vec<String>> = lookup_time_study()
                .into_iter()
                .map(|r| {
                    vec![
                        r.classes.to_string(),
                        r.methods_per_class.to_string(),
                        r.constraints.to_string(),
                        format!("{:.3}", r.nanos_per_lookup / 1000.0),
                        "0.25–0.52".into(),
                    ]
                })
                .collect();
            print_table(
                "§2.3.2 — repository lookup times (warm cache)",
                &[
                    "classes",
                    "methods/class",
                    "constraints",
                    "µs/lookup",
                    "paper µs",
                ],
                &rows,
            );
            println!("  paper finding: lookup time independent of the entry count");
        }
        other => panic!("unknown chapter-2 experiment '{other}'"),
    }
}
