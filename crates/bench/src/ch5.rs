//! Chapter 5 reproduction: healthy/degraded-mode performance, the
//! reconciliation phase and the §5.5 improvements — measured in
//! deterministic virtual time (see DESIGN.md §1).

use crate::table::{ops, print_table};
use dedisys_apps::flight;
use dedisys_constraints::{
    ConstraintKind, ConstraintMeta, ContextPreparation, RegisteredConstraint, ValidationContext,
};
use dedisys_core::nodes;
use dedisys_core::{
    Cluster, ClusterBuilder, DeferAll, HighestVersionWins, HistoryPolicy, JsonlExporter,
    ReconcileStrategy,
};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState, MethodDescriptor, MethodKind};
use dedisys_types::{NodeId, ObjectId, SatisfactionDegree, SimDuration, Value};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// When set (via `repro --trace <path>`), every cluster the experiments
/// build appends its telemetry stream to this JSONL file.
static TRACE_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Routes the telemetry stream of every subsequently built cluster into
/// `path` (appending — callers truncate the file once up front).
/// `None` disables tracing again.
pub fn set_trace_path(path: Option<PathBuf>) {
    *TRACE_PATH.lock().expect("trace path poisoned") = path;
}

/// Attaches a JSONL exporter to `cluster` when tracing is enabled.
fn attach_trace(cluster: &Cluster) {
    let guard = TRACE_PATH.lock().expect("trace path poisoned");
    if let Some(path) = guard.as_ref() {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open trace file");
        cluster
            .telemetry()
            .attach(Box::new(JsonlExporter::new(Box::new(file))));
    }
}

/// `build().expect(..)` plus trace attachment — the one way the
/// experiments materialize clusters.
trait BuildTraced {
    fn build_traced(self) -> Cluster;
}

impl BuildTraced for ClusterBuilder {
    fn build_traced(self) -> Cluster {
        let cluster = self.build().expect("cluster");
        attach_trace(&cluster);
        cluster
    }
}

/// The evaluation application of §5.1 ("DedisysTest"): plain items,
/// a class with always-satisfied/always-violated constraints, and a
/// guarded class whose writes produce consistency threats in degraded
/// mode.
fn eval_app() -> AppDescriptor {
    AppDescriptor::new("dedisys-test")
        .with_class(
            ClassDescriptor::new("Item")
                .with_field("value", Value::from(""))
                .with_method(MethodDescriptor::with_kind(
                    "emptyMethod",
                    MethodKind::Write,
                )),
        )
        .with_class(
            ClassDescriptor::new("Checked")
                .with_field("value", Value::from(""))
                .with_method(MethodDescriptor::with_kind(
                    "satisfiedOp",
                    MethodKind::Write,
                ))
                .with_method(MethodDescriptor::with_kind("violatedOp", MethodKind::Write)),
        )
        .with_class(
            ClassDescriptor::new("Guarded")
                .with_field("value", Value::from(""))
                .with_method(MethodDescriptor::with_kind("guardedOp", MethodKind::Write)),
        )
}

fn eval_constraints() -> Vec<RegisteredConstraint> {
    // Satisfied / violated achieved by simply returning true/false
    // (§5.1 — eliminates the validation overhead itself).
    let satisfied = RegisteredConstraint::new(
        ConstraintMeta::new("AlwaysSatisfied").kind(ConstraintKind::HardInvariant),
        Arc::new(|_: &mut ValidationContext<'_>| Ok(true)),
    )
    .context_class("Checked")
    .affects("Checked", "satisfiedOp", ContextPreparation::CalledObject);
    let violated = RegisteredConstraint::new(
        ConstraintMeta::new("AlwaysViolated").kind(ConstraintKind::HardInvariant),
        Arc::new(|_: &mut ValidationContext<'_>| Ok(false)),
    )
    .context_class("Checked")
    .affects("Checked", "violatedOp", ContextPreparation::CalledObject);
    // The guarded setter reads its object, so degraded-mode validation
    // is an LCC ⇒ consistency threat; tradeable, accepted statically.
    let guarded = RegisteredConstraint::new(
        ConstraintMeta::new("GuardedValue").tradeable(SatisfactionDegree::PossiblySatisfied),
        Arc::new(|ctx: &mut ValidationContext<'_>| {
            ctx.self_field("value")?;
            Ok(true)
        }),
    )
    .context_class("Guarded")
    .affects("Guarded", "setValue", ContextPreparation::CalledObject)
    .affects("Guarded", "guardedOp", ContextPreparation::CalledObject);
    vec![satisfied, violated, guarded]
}

fn builder(nodes: u32) -> ClusterBuilder {
    ClusterBuilder::new(nodes, eval_app()).constraints(eval_constraints())
}

fn create_pool(cluster: &mut Cluster, node: NodeId, class: &str, count: usize) -> Vec<ObjectId> {
    create_pool_prefixed(cluster, node, class, "p", count)
}

fn create_pool_prefixed(
    cluster: &mut Cluster,
    node: NodeId,
    class: &str,
    prefix: &str,
    count: usize,
) -> Vec<ObjectId> {
    (0..count)
        .map(|i| {
            let id = ObjectId::new(class, format!("{prefix}-{class}-{i}"));
            let e = id.clone();
            cluster
                .run_tx(node, move |c, tx| {
                    c.create(node, tx, EntityState::for_class(c.app(), &e)?)
                })
                .expect("pool creation");
            id
        })
        .collect()
}

/// Ops/sec of `count` repetitions of `f`, each in its own transaction.
fn throughput(
    cluster: &mut Cluster,
    count: usize,
    mut f: impl FnMut(&mut Cluster, usize) -> bool,
) -> f64 {
    let start = cluster.now();
    let mut attempted = 0u64;
    for i in 0..count {
        f(cluster, i);
        attempted += 1;
    }
    let elapsed = cluster.now().since(start);
    attempted as f64 / elapsed.as_secs_f64()
}

const N: usize = 500;

/// The standard §5.1 operation mix measured against one cluster.
/// Returns `(label, ops/sec)` rows; threat rows only when `threats`.
fn standard_rows(cluster: &mut Cluster, node: NodeId, threats: bool) -> Vec<(String, f64)> {
    let items = create_pool(cluster, node, "Item", 100);
    let checked = create_pool(cluster, node, "Checked", 10);
    let mut rows = Vec::new();

    rows.push((
        "Create".into(),
        throughput(cluster, N, |c, i| {
            let id = ObjectId::new("Item", format!("x-{i}-{}", c.now().as_nanos()));
            c.run_tx(node, move |c, tx| {
                c.create(node, tx, EntityState::for_class(c.app(), &id)?)
            })
            .is_ok()
        }),
    ));
    let pool = items.clone();
    rows.push((
        "Setter (avg.)".into(),
        throughput(cluster, N, |c, i| {
            let id = pool[i % pool.len()].clone();
            c.run_tx(node, move |c, tx| {
                c.set_field(node, tx, &id, "value", Value::from("v"))
            })
            .is_ok()
        }),
    ));
    let pool = items.clone();
    rows.push((
        "Getter (avg.)".into(),
        throughput(cluster, N, |c, i| {
            let id = pool[i % pool.len()].clone();
            c.run_tx(node, move |c, tx| c.get_field(node, tx, &id, "value"))
                .is_ok()
        }),
    ));
    let pool = items.clone();
    rows.push((
        "Empty (avg.)".into(),
        throughput(cluster, N, |c, i| {
            let id = pool[i % pool.len()].clone();
            c.run_tx(node, move |c, tx| {
                c.invoke(node, tx, &id, "emptyMethod", vec![])
            })
            .is_ok()
        }),
    ));
    if threats {
        let pool = checked.clone();
        rows.push((
            "Satisfied (avg.)".into(),
            throughput(cluster, N, |c, i| {
                let id = pool[i % pool.len()].clone();
                c.run_tx(node, move |c, tx| {
                    c.invoke(node, tx, &id, "satisfiedOp", vec![])
                })
                .is_ok()
            }),
        ));
        let pool = checked;
        rows.push((
            "Violated (avg.)".into(),
            throughput(cluster, N, |c, i| {
                let id = pool[i % pool.len()].clone();
                c.run_tx(node, move |c, tx| {
                    c.invoke(node, tx, &id, "violatedOp", vec![])
                })
                .is_ok()
            }),
        ));
    }
    // Delete the item pool (plus extras created above remain).
    let pool = items;
    rows.push((
        "Delete".into(),
        throughput(cluster, pool.len(), |c, i| {
            let id = pool[i].clone();
            c.run_tx(node, move |c, tx| c.delete(node, tx, &id)).is_ok()
        }),
    ));
    rows
}

// ---------------------------------------------------------------------
// Figure 5.1
// ---------------------------------------------------------------------

/// Figure 5.1 — overhead of explicit constraint consistency
/// management: ops/sec with and without the CCM (single node, no
/// replication). The paper measures a drop to 87–99 %.
pub fn fig5_1() -> Vec<(String, f64, f64)> {
    let mut with_ccm = builder(1).ccm_only().build_traced();
    let mut without = builder(1).without_dedisys().build_traced();
    let rows_with = standard_rows(&mut with_ccm, NodeId(0), false);
    let rows_without = standard_rows(&mut without, NodeId(0), false);
    rows_with
        .into_iter()
        .zip(rows_without)
        .map(|((label, w), (_, wo))| (label, w, wo))
        .collect()
}

// ---------------------------------------------------------------------
// Figures 5.2 / 5.3
// ---------------------------------------------------------------------

/// One column of Figure 5.2/5.3.
#[derive(Debug, Clone)]
pub struct Fig5Column {
    /// Column label.
    pub label: String,
    /// `(row label, ops/sec)` — `None` where not applicable.
    pub rows: Vec<(String, Option<f64>)>,
}

fn dedisys_column(label: &str, total_nodes: u32, partition: Option<&[Vec<NodeId>]>) -> Fig5Column {
    let mut cluster = builder(total_nodes).build_traced();
    let node = NodeId(0);
    // Pools for the threat cases are created while still healthy.
    let good_pool = create_pool_prefixed(&mut cluster, node, "Guarded", "good", 1);
    let bad_pool = create_pool_prefixed(&mut cluster, node, "Guarded", "bad", 1000);
    if let Some(groups) = partition {
        cluster.partition(groups).unwrap();
    }
    let mut rows: Vec<(String, Option<f64>)> = standard_rows(&mut cluster, node, true)
        .into_iter()
        .map(|(l, v)| (l, Some(v)))
        .collect();
    if partition.is_some() {
        // §5.1: "we called an empty method with an associated
        // constraint 1000 times" — once against a single object
        // (identical threats) and once against 1000 different objects.
        let good = throughput(&mut cluster, 1000, |c, _| {
            let id = good_pool[0].clone();
            c.run_tx(node, move |c, tx| {
                c.invoke(node, tx, &id, "guardedOp", vec![])
            })
            .is_ok()
        });
        let bad = throughput(&mut cluster, 1000, |c, i| {
            let id = bad_pool[i].clone();
            c.run_tx(node, move |c, tx| {
                c.invoke(node, tx, &id, "guardedOp", vec![])
            })
            .is_ok()
        });
        rows.insert(rows.len() - 1, ("Accepted threat (1)".into(), Some(good)));
        rows.insert(rows.len() - 1, ("Accepted threat (1000)".into(), Some(bad)));
    } else {
        rows.insert(rows.len() - 1, ("Accepted threat (1)".into(), None));
        rows.insert(rows.len() - 1, ("Accepted threat (1000)".into(), None));
    }
    Fig5Column {
        label: label.to_owned(),
        rows,
    }
}

fn no_dedisys_column() -> Fig5Column {
    let mut cluster = builder(1).without_dedisys().build_traced();
    let mut rows: Vec<(String, Option<f64>)> = standard_rows(&mut cluster, NodeId(0), false)
        .into_iter()
        .map(|(l, v)| (l, Some(v)))
        .collect();
    for label in [
        "Satisfied (avg.)",
        "Violated (avg.)",
        "Accepted threat (1)",
        "Accepted threat (1000)",
    ] {
        rows.insert(rows.len() - 1, (label.into(), None));
    }
    Fig5Column {
        label: "No DeDiSys (1 node)".into(),
        rows,
    }
}

/// Figure 5.2 — No DeDiSys vs DeDiSys with the same number of nodes in
/// healthy and degraded mode (paper: threat good case 74 ops/s, bad
/// case 3 ops/s).
pub fn fig5_2() -> Vec<Fig5Column> {
    vec![
        no_dedisys_column(),
        dedisys_column("DeDiSys healthy (3)", 3, None),
        dedisys_column(
            "DeDiSys degraded (3-in-partition)",
            4,
            Some(&[nodes![0, 1, 2], nodes![3]]),
        ),
    ]
}

/// Figure 5.3 — healthy with three nodes vs degraded with two nodes in
/// the partition (degraded writes can beat healthy: fewer backups).
pub fn fig5_3() -> Vec<Fig5Column> {
    vec![
        no_dedisys_column(),
        dedisys_column("DeDiSys healthy (3)", 3, None),
        dedisys_column(
            "DeDiSys degraded (2-in-partition)",
            3,
            Some(&[nodes![0, 1], nodes![2]]),
        ),
    ]
}

// ---------------------------------------------------------------------
// Figure 5.4
// ---------------------------------------------------------------------

/// Figure 5.4 — replication effects per node count: per-operation
/// ops/sec for 1–4 DeDiSys nodes, the aggregate read capacity, and the
/// multicast+transaction-handling ceiling.
pub fn fig5_4() -> Vec<Vec<String>> {
    let mut out = Vec::new();
    // Reference: No DeDiSys single node.
    let mut baseline = builder(1).without_dedisys().build_traced();
    let base_rows = standard_rows(&mut baseline, NodeId(0), false);
    out.push(
        std::iter::once("No DeDiSys".to_owned())
            .chain(base_rows.iter().map(|(_, v)| ops(*v)))
            .chain(["-".to_owned(), "-".to_owned()])
            .collect(),
    );
    for n in 1..=4u32 {
        let mut cluster = builder(n).build_traced();
        let rows = standard_rows(&mut cluster, NodeId(0), false);
        let getter = rows
            .iter()
            .find(|(l, _)| l.starts_with("Getter"))
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        // Reads execute locally on every node: the aggregate read
        // capacity scales with the node count (§5.1).
        let aggregate_reads = getter * f64::from(n);
        // Theoretical update ceiling (the "Multicast + Tx handling"
        // case of §5.1): ping multicast round trip + transaction
        // association at the backups — no state extraction, no
        // database writes.
        let costs = *cluster.costs();
        let ceiling = if n >= 2 {
            let per_op = costs.net_hop * 2
                + SimDuration::from_micros(1_500) // tx association
                + SimDuration::from_micros(300) * u64::from(n - 2);
            ops(1.0 / per_op.as_secs_f64())
        } else {
            "-".to_owned()
        };
        out.push(
            std::iter::once(format!("DeDiSys {n} node(s)"))
                .chain(rows.iter().map(|(_, v)| ops(*v)))
                .chain([ops(aggregate_reads), ceiling])
                .collect(),
        );
    }
    out
}

// ---------------------------------------------------------------------
// Figure 5.6 — reconciliation time
// ---------------------------------------------------------------------

/// One reconciliation measurement.
#[derive(Debug, Clone)]
pub struct ReconRow {
    /// Policy label.
    pub label: String,
    /// Threat records stored at heal time.
    pub stored_threats: usize,
    /// Virtual time of replica reconciliation.
    pub replica: SimDuration,
    /// Virtual time of constraint reconciliation.
    pub constraint: SimDuration,
}

/// Figure 5.6 — time for missed-update propagation and threat
/// re-evaluation, under the identical-once vs full-history policies
/// (1000 degraded operations over 200 objects → 200 vs 1000 records).
/// The third row stores the full history but folds duplicate records
/// in the background ([`HistoryPolicy::Reduced`]) — heal-time storage
/// lands near the identical-once figure.
pub fn fig5_6() -> Vec<ReconRow> {
    let mut out = Vec::new();
    for (policy, label) in [
        (HistoryPolicy::IdenticalOnce, "Identical threats once"),
        (HistoryPolicy::FullHistory, "Full threat history"),
        (HistoryPolicy::Reduced, "Reduced (compacted)"),
    ] {
        let mut cluster = builder(2)
            .configure(|c| c.durability.threat_policy = policy)
            .build_traced();
        let node = NodeId(0);
        let pool = create_pool(&mut cluster, node, "Guarded", 200);
        cluster.partition(&[nodes![0], nodes![1]]).unwrap();
        for i in 0..1000 {
            let id = pool[i % pool.len()].clone();
            cluster
                .run_tx(node, move |c, tx| {
                    c.set_field(node, tx, &id, "value", Value::from("d"))
                })
                .expect("degraded write");
        }
        let stored = cluster.threats().len();
        cluster.heal();
        let summary = cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
        out.push(ReconRow {
            label: label.into(),
            stored_threats: stored,
            replica: summary.replica_duration,
            constraint: summary.constraint_duration,
        });
    }
    out
}

/// One row of the incremental-vs-full-scan reconciliation comparison.
#[derive(Debug, Clone)]
pub struct IncrementalRow {
    /// Strategy + scenario label.
    pub label: String,
    /// Threat identities produced in the partition that stays away.
    pub away: usize,
    /// Threat identities actually re-evaluated.
    pub re_evaluated: usize,
    /// Threat identities skipped without re-evaluation.
    pub skipped: usize,
    /// Threats whose constraints were satisfied (removed).
    pub satisfied_removed: usize,
    /// Actual violations detected.
    pub violations: usize,
    /// Violations deferred to application-driven cleanup.
    pub deferred: usize,
    /// Threats still threatened after the partial merge.
    pub postponed: usize,
    /// Virtual time of the constraint phase.
    pub constraint: SimDuration,
}

/// Figure 5.6 (incremental) — constraint reconciliation after a
/// *partial* re-unification, full scan vs the object-indexed
/// incremental engine.
///
/// Three-way split: partition `{0}` produces 50 threats on a "touch"
/// pool, partition `{2}` produces `away` threats on a separate pool.
/// Then `{0, 1}` re-unify while `{2}` stays away and node 0 observes a
/// partial reconciliation. The full scan re-evaluates *every* stored
/// identity, so its constraint phase scales with `away`; the
/// incremental engine only re-evaluates identities touching the dirty
/// set (the touch pool) and skips the rest (still degraded-tracked) —
/// its cost is flat in `away`. Outcomes are identical by construction
/// (skipped identities would re-validate to a threat degree anyway).
pub fn fig5_6_incremental() -> Vec<IncrementalRow> {
    const TOUCH: usize = 50;
    let mut out = Vec::new();
    for away in [200usize, 600, 1000] {
        for (strategy, label) in [
            (ReconcileStrategy::FullScan, "full scan"),
            (ReconcileStrategy::Incremental, "incremental"),
        ] {
            let mut cluster = builder(3)
                .configure(|c| c.durability.reconcile_strategy = strategy)
                .build_traced();
            let node = NodeId(0);
            let touch = create_pool_prefixed(&mut cluster, node, "Guarded", "touch", TOUCH);
            let away_pool = create_pool_prefixed(&mut cluster, node, "Guarded", "away", away);
            cluster
                .partition(&[nodes![0], nodes![1], nodes![2]])
                .unwrap();
            // Threat-producing writes near the future observer…
            for id in &touch {
                let id = id.clone();
                cluster
                    .run_tx(node, move |c, tx| {
                        c.set_field(node, tx, &id, "value", Value::from("near"))
                    })
                    .expect("near write");
            }
            // …and in the partition that stays away after the merge.
            let far = NodeId(2);
            for id in &away_pool {
                let id = id.clone();
                cluster
                    .run_tx(far, move |c, tx| {
                        c.set_field(far, tx, &id, "value", Value::from("far"))
                    })
                    .expect("far write");
            }
            // Partial re-unification: {0, 1} merge, {2} stays away.
            cluster.partition(&[nodes![0, 1], nodes![2]]).unwrap();
            let summary = cluster.reconcile_partial(node, &mut HighestVersionWins, &mut DeferAll);
            let c = &summary.constraints;
            out.push(IncrementalRow {
                label: format!("{label}, {away} away"),
                away,
                re_evaluated: c.re_evaluated,
                skipped: c.skipped,
                satisfied_removed: c.satisfied_removed,
                violations: c.violations,
                deferred: c.deferred,
                postponed: c.postponed,
                constraint: summary.constraint_duration,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figure 5.8 — reduced threat history across iterations
// ---------------------------------------------------------------------

/// Figure 5.8 — degraded-mode throughput across five iterations of the
/// same 200 threat-producing operations (paper: ≈4 ops/s with full
/// history vs ≈15 ops/s with identical-once after the first
/// iteration).
pub fn fig5_8() -> Vec<(String, Vec<f64>)> {
    let mut out = Vec::new();
    for (policy, label) in [
        (
            HistoryPolicy::FullHistory,
            "Accepted threats (full history)",
        ),
        (
            HistoryPolicy::IdenticalOnce,
            "Accepted threats (identical only once)",
        ),
    ] {
        let mut cluster = builder(2)
            .configure(|c| c.durability.threat_policy = policy)
            .build_traced();
        let node = NodeId(0);
        let pool = create_pool(&mut cluster, node, "Guarded", 200);
        cluster.partition(&[nodes![0], nodes![1]]).unwrap();
        let mut iterations = Vec::new();
        for _ in 0..5 {
            let rate = throughput(&mut cluster, 200, |c, i| {
                let id = pool[i].clone();
                c.run_tx(node, move |c, tx| {
                    c.set_field(node, tx, &id, "value", Value::from("t"))
                })
                .is_ok()
            });
            iterations.push(rate);
        }
        out.push((label.into(), iterations));
    }
    out
}

// ---------------------------------------------------------------------
// §5.5.3 — asynchronous constraints
// ---------------------------------------------------------------------

/// §5.5.3 — degraded-mode ops/sec with soft vs asynchronous
/// constraints (paper: async ≈ 2× soft with identical-once storage).
pub fn tab5_async() -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (kind, label) in [
        (ConstraintKind::SoftInvariant, "Soft constraint"),
        (ConstraintKind::AsyncInvariant, "Asynchronous constraint"),
    ] {
        let constraint = RegisteredConstraint::new(
            ConstraintMeta::new("G")
                .kind(kind)
                .tradeable(SatisfactionDegree::PossiblySatisfied),
            Arc::new(|ctx: &mut ValidationContext<'_>| {
                ctx.self_field("value")?;
                Ok(true)
            }),
        )
        .context_class("Guarded")
        .affects("Guarded", "setValue", ContextPreparation::CalledObject);
        let mut cluster = ClusterBuilder::new(2, eval_app())
            .constraint(constraint)
            .build_traced();
        let node = NodeId(0);
        let pool = create_pool(&mut cluster, node, "Guarded", 1);
        cluster.partition(&[nodes![0], nodes![1]]).unwrap();
        let rate = throughput(&mut cluster, 500, |c, _| {
            let id = pool[0].clone();
            c.run_tx(node, move |c, tx| {
                c.set_field(node, tx, &id, "value", Value::from("x"))
            })
            .is_ok()
        });
        out.push((label.into(), rate));
    }
    out
}

// ---------------------------------------------------------------------
// §5.5.2 — partition-sensitive constraints
// ---------------------------------------------------------------------

/// §5.5.2 — overbooking introduced with the plain vs the
/// partition-sensitive ticket constraint under a 2-way split.
pub fn tab5_psc() -> Vec<(String, i64, i64)> {
    let mut out = Vec::new();
    for (psc, label) in [
        (false, "Plain ticket constraint"),
        (true, "Partition-sensitive"),
    ] {
        let mut b = ClusterBuilder::new(2, flight::flight_app()).methods(flight::flight_methods());
        b = if psc {
            b.constraint(flight::partition_sensitive_ticket_constraint())
        } else {
            b.constraint(flight::ticket_constraint())
        };
        let mut cluster = b.build_traced();
        let flight_id =
            flight::create_flight(&mut cluster, NodeId(0), "LH-441", 80, 70).expect("flight");
        cluster.partition(&[nodes![0], nodes![1]]).unwrap();
        // Both sides keep selling single tickets until rejected.
        let mut sold_in_partition = [0i64; 2];
        for (i, node) in [NodeId(0), NodeId(1)].into_iter().enumerate() {
            while flight::sell_tickets(&mut cluster, node, &flight_id, 1).is_ok() {
                sold_in_partition[i] += 1;
                if sold_in_partition[i] > 50 {
                    break;
                }
            }
        }
        // Merge additively (sales are increments).
        cluster.heal();
        let mut merge = |conflict: &dedisys_core::ReplicaConflict| {
            let total: i64 = conflict
                .candidates
                .iter()
                .filter_map(|(_, s)| s.as_ref())
                .filter_map(|s| s.field("sold").as_int())
                .map(|s| s - 70)
                .sum();
            let mut merged = conflict.candidates[0].1.clone().expect("live");
            merged.set_field("sold", Value::Int(70 + total), dedisys_types::SimTime::ZERO);
            Some(merged)
        };
        cluster.reconcile(&mut merge, &mut DeferAll);
        let sold = cluster
            .entity_on(NodeId(0), &flight_id)
            .unwrap()
            .field("sold")
            .as_int()
            .unwrap();
        let overbooked = (sold - 80).max(0);
        out.push((label.into(), sold, overbooked));
    }
    out
}

// ---------------------------------------------------------------------
// Simulation studies [Se05] / abstract conclusions
// ---------------------------------------------------------------------

/// Availability study: fraction of operations that *succeed* during a
/// network partition, per protocol (the \[Se05\] simulation finding that
/// the approach + P4 increases availability under partitions).
pub fn tab_avail() -> Vec<(String, Vec<(f64, f64)>)> {
    use dedisys_core::ProtocolKind;
    let mut out = Vec::new();
    for (protocol, label) in [
        (ProtocolKind::PrimaryBackup, "Primary-backup"),
        (ProtocolKind::PrimaryPartition, "Primary partition"),
        (ProtocolKind::PrimaryPerPartition, "DeDiSys P4 + threats"),
    ] {
        let mut rows = Vec::new();
        for write_fraction in [0.1, 0.3, 0.5] {
            let mut cluster = builder(3).protocol(protocol).build_traced();
            let node = NodeId(1); // a *minority*-side client after the split
            let pool = create_pool(&mut cluster, NodeId(0), "Guarded", 20);
            cluster.partition(&[nodes![0, 2], nodes![1]]).unwrap();
            let total = 400usize;
            let mut ok = 0u64;
            for i in 0..total {
                let id = pool[i % pool.len()].clone();
                let write = (i as f64 / total as f64) < write_fraction;
                let result = if write {
                    cluster.run_tx(node, move |c, tx| {
                        c.set_field(node, tx, &id, "value", Value::from("w"))
                    })
                } else {
                    cluster
                        .run_tx(node, move |c, tx| c.get_field(node, tx, &id, "value"))
                        .map(|_| ())
                };
                if result.is_ok() {
                    ok += 1;
                }
            }
            rows.push((write_fraction, ok as f64 / total as f64));
        }
        out.push((label.to_owned(), rows));
    }
    out
}

/// The abstract's cost/benefit conclusion: the middleware pays off
/// when (i) the read-to-write ratio is high and (ii) the number of
/// replicated nodes is small. Computes the system-wide throughput of
/// a DeDiSys cluster relative to a single unreplicated server, over
/// read fractions × node counts (reads execute locally on every node;
/// writes pay synchronous propagation).
pub fn tab_worth() -> Vec<(u32, Vec<(f64, f64)>)> {
    // Per-op virtual costs measured from the standard rows.
    let mut baseline = builder(1).without_dedisys().build_traced();
    let base = standard_rows(&mut baseline, NodeId(0), false);
    let rate = |rows: &[(String, f64)], label: &str| {
        rows.iter()
            .find(|(l, _)| l.starts_with(label))
            .map(|(_, v)| *v)
            .unwrap_or(1.0)
    };
    let base_read = rate(&base, "Getter");
    let base_write = rate(&base, "Setter");
    let mut out = Vec::new();
    for n in 1..=4u32 {
        let mut cluster = builder(n).build_traced();
        let rows = standard_rows(&mut cluster, NodeId(0), false);
        let read = rate(&rows, "Getter");
        let write = rate(&rows, "Setter");
        let mut points = Vec::new();
        for read_fraction in [0.5, 0.9, 0.99] {
            let w = 1.0 - read_fraction;
            // System-wide capacity: reads scale with the node count,
            // writes are serialized through the primary + propagation.
            let dedisys = 1.0 / (read_fraction / (read * f64::from(n)) + w / write);
            let single = 1.0 / (read_fraction / base_read + w / base_write);
            points.push((read_fraction, dedisys / single));
        }
        out.push((n, points));
    }
    out
}

// ---------------------------------------------------------------------
// Figure 1.3 — the motivating scenario
// ---------------------------------------------------------------------

/// §1.3 — the narrative numbers: 70 sold healthy, +7/+8 under the
/// split, 85 after merge, 80 after rebooking. Returns
/// `(after_a, after_b, merged, reconciled)`.
pub fn fig1_3() -> (i64, i64, i64, i64) {
    let mut cluster = flight::booking_cluster(4).expect("cluster");
    attach_trace(&cluster);
    let id = flight::create_flight(&mut cluster, NodeId(0), "LH-441", 80, 70).expect("flight");
    cluster.partition(&[nodes![0, 1], nodes![2, 3]]).unwrap();
    let after_a = flight::sell_tickets(&mut cluster, NodeId(0), &id, 7).expect("side A");
    let after_b = flight::sell_tickets(&mut cluster, NodeId(2), &id, 8).expect("side B");
    cluster.heal();
    let mut merged_value = 0;
    let mut merge = |conflict: &dedisys_core::ReplicaConflict| {
        let total: i64 = conflict
            .candidates
            .iter()
            .filter_map(|(_, s)| s.as_ref())
            .filter_map(|s| s.field("sold").as_int())
            .map(|s| s - 70)
            .sum();
        merged_value = 70 + total;
        let mut merged = conflict.candidates[0].1.clone().expect("live");
        merged.set_field("sold", Value::Int(70 + total), dedisys_types::SimTime::ZERO);
        Some(merged)
    };
    let flight_fix = id.clone();
    let mut rebook = move |_v: &dedisys_core::ViolationReport,
                           ops: &mut dedisys_core::ReconOps<'_>| {
        let seats = ops.read(&flight_fix, "seats").unwrap().as_int().unwrap();
        ops.write(&flight_fix, "sold", Value::Int(seats)).unwrap();
        true
    };
    cluster.reconcile(&mut merge, &mut rebook);
    let reconciled = cluster
        .entity_on(NodeId(0), &id)
        .unwrap()
        .field("sold")
        .as_int()
        .unwrap();
    (after_a, after_b, merged_value, reconciled)
}

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

fn print_columns(title: &str, columns: &[Fig5Column]) {
    let mut header = vec!["operation"];
    for c in columns {
        header.push(&c.label);
    }
    let row_labels: Vec<String> = columns[0].rows.iter().map(|(l, _)| l.clone()).collect();
    let rows: Vec<Vec<String>> = row_labels
        .iter()
        .map(|label| {
            let mut row = vec![label.clone()];
            for c in columns {
                let value = c
                    .rows
                    .iter()
                    .find(|(l, _)| l == label)
                    .and_then(|(_, v)| *v);
                row.push(value.map(ops).unwrap_or_else(|| "-".into()));
            }
            row
        })
        .collect();
    print_table(title, &header, &rows);
}

/// Runs and prints one chapter-5 experiment.
pub fn run(id: &str) {
    match id {
        "fig5-1" => {
            let rows: Vec<Vec<String>> = fig5_1()
                .into_iter()
                .map(|(label, with, without)| {
                    let pct = with / without * 100.0;
                    vec![label, ops(with), ops(without), format!("{pct:.1}%"), "87–99%".into()]
                })
                .collect();
            print_table(
                "Figure 5.1 — overhead of explicit constraint consistency management (ops/s)",
                &["operation", "with CCM", "without", "retained", "paper"],
                &rows,
            );
        }
        "fig5-2" => print_columns(
            "Figure 5.2 — No DeDiSys vs DeDiSys, healthy and degraded (same partition size); paper threat cases: 74 vs 3 ops/s",
            &fig5_2(),
        ),
        "fig5-3" => print_columns(
            "Figure 5.3 — healthy (3 nodes) vs degraded (2 nodes in partition)",
            &fig5_3(),
        ),
        "fig5-4" => {
            let rows = fig5_4();
            print_table(
                "Figure 5.4 — replication effects per node count (ops/s)",
                &[
                    "configuration",
                    "create",
                    "setter",
                    "getter (per node)",
                    "empty",
                    "delete",
                    "reads aggregate",
                    "multicast+tx ceiling",
                ],
                &rows,
            );
        }
        "fig5-6" => {
            let rows: Vec<Vec<String>> = fig5_6()
                .into_iter()
                .map(|r| {
                    vec![
                        r.label,
                        r.stored_threats.to_string(),
                        format!("{}", r.replica),
                        format!("{}", r.constraint),
                    ]
                })
                .collect();
            print_table(
                "Figure 5.6 — reconciliation time (1000 degraded ops over 200 objects)",
                &["policy", "threat records", "replica recon", "constraint recon"],
                &rows,
            );
            println!("  paper shape: replica phase dominates and scales with the record count");
            let rows: Vec<Vec<String>> = fig5_6_incremental()
                .into_iter()
                .map(|r| {
                    vec![
                        r.label,
                        r.re_evaluated.to_string(),
                        r.skipped.to_string(),
                        r.postponed.to_string(),
                        format!("{}", r.constraint),
                    ]
                })
                .collect();
            print_table(
                "Figure 5.6 (incremental) — partial merge, full scan vs object-indexed engine",
                &["strategy", "re-evaluated", "skipped", "postponed", "constraint recon"],
                &rows,
            );
            println!(
                "  shape: full scan grows with the away-partition threat count; incremental stays flat"
            );
        }
        "fig5-8" => {
            let rows: Vec<Vec<String>> = fig5_8()
                .into_iter()
                .map(|(label, iters)| {
                    let mut row = vec![label];
                    row.extend(iters.iter().map(|v| ops(*v)));
                    row
                })
                .collect();
            print_table(
                "Figure 5.8 — identical-threat improvement across iterations (ops/s)",
                &["configuration", "iter 1", "iter 2", "iter 3", "iter 4", "iter 5"],
                &rows,
            );
            println!("  paper: ≈4 ops/s (full history) vs ≈15 ops/s (identical once, after iter 1)");
        }
        "tab5-async" => {
            let rows: Vec<Vec<String>> = tab5_async()
                .into_iter()
                .map(|(label, rate)| vec![label, ops(rate)])
                .collect();
            print_table(
                "§5.5.3 — soft vs asynchronous constraints in degraded mode (ops/s)",
                &["configuration", "ops/s"],
                &rows,
            );
            println!("  paper: asynchronous ≈ 2× soft (identical threats stored once)");
        }
        "tab5-psc" => {
            let rows: Vec<Vec<String>> = tab5_psc()
                .into_iter()
                .map(|(label, sold, overbooked)| {
                    vec![label, sold.to_string(), overbooked.to_string()]
                })
                .collect();
            print_table(
                "§5.5.2 — partition-sensitive constraints: overbooking after the split (80 seats)",
                &["constraint", "sold after merge", "overbooked"],
                &rows,
            );
        }
        "fig1-3" => {
            let (a, b, merged, reconciled) = fig1_3();
            print_table(
                "§1.3 — the motivating flight-booking scenario (80 seats, 70 sold)",
                &["stage", "sold"],
                &[
                    vec!["partition A after +7".into(), a.to_string()],
                    vec!["partition B after +8".into(), b.to_string()],
                    vec!["after reunification (merge)".into(), merged.to_string()],
                    vec!["after reconciliation (rebooked)".into(), reconciled.to_string()],
                ],
            );
            println!("  paper narrative: 77 / 78 / 85 / 80");
        }
        "tab-avail" => {
            let data = tab_avail();
            let rows: Vec<Vec<String>> = data
                .into_iter()
                .map(|(label, points)| {
                    let mut row = vec![label];
                    row.extend(points.iter().map(|(_, a)| format!("{:.0}%", a * 100.0)));
                    row
                })
                .collect();
            print_table(
                "[Se05] availability in a minority partition (ops succeeding), by write fraction",
                &["protocol", "10% writes", "30% writes", "50% writes"],
                &rows,
            );
            println!("  paper: the approach + P4 increases availability in the presence of partitions");
        }
        "tab-worth" => {
            let data = tab_worth();
            let rows: Vec<Vec<String>> = data
                .into_iter()
                .map(|(n, points)| {
                    let mut row = vec![format!("{n} node(s)")];
                    row.extend(points.iter().map(|(_, r)| format!("{r:.2}×")));
                    row
                })
                .collect();
            print_table(
                "Abstract conclusion — system throughput vs a single unreplicated server, by read fraction",
                &["DeDiSys nodes", "50% reads", "90% reads", "99% reads"],
                &rows,
            );
            println!("  paper: most worth its costs when the read-to-write ratio is high and the node count small");
        }
        other => panic!("unknown chapter-5 experiment '{other}'"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §1.3 narrative must match the paper exactly.
    #[test]
    fn fig1_3_matches_the_paper_narrative() {
        assert_eq!(fig1_3(), (77, 78, 85, 80));
    }

    /// Figure 5.1: CCM-only overhead keeps ≥ 85% of the baseline
    /// throughput (paper band 87–99%).
    #[test]
    fn fig5_1_ccm_overhead_in_paper_band() {
        for (label, with, without) in fig5_1() {
            let retained = with / without;
            assert!(
                (0.85..=1.0).contains(&retained),
                "{label}: retained {retained:.3}"
            );
        }
    }

    /// Figure 5.8: identical-once is several times faster than full
    /// history after the first iteration; iteration 1 is equal.
    #[test]
    fn fig5_8_identical_once_improvement() {
        let data = fig5_8();
        let full = &data[0].1;
        let once = &data[1].1;
        assert!((full[0] - once[0]).abs() / full[0] < 0.1, "iter 1 equal");
        assert!(once[1] > full[1] * 3.0, "{} vs {}", once[1], full[1]);
    }

    /// §5.5.2: the partition-sensitive constraint prevents overbooking
    /// entirely; the plain constraint does not.
    #[test]
    fn tab5_psc_prevents_overbooking() {
        let rows = tab5_psc();
        let (_, _, plain_overbooked) = rows[0];
        let (_, psc_sold, psc_overbooked) = rows[1];
        assert!(plain_overbooked > 0);
        assert_eq!(psc_overbooked, 0);
        assert_eq!(psc_sold, 80);
    }

    /// §5.5.3: async constraints beat soft constraints in degraded mode.
    #[test]
    fn tab5_async_is_faster_than_soft() {
        let rows = tab5_async();
        let soft = rows[0].1;
        let async_rate = rows[1].1;
        assert!(async_rate > soft * 1.1, "{async_rate} vs {soft}");
    }

    /// [Se05]: P4 + threat trading keeps the minority partition fully
    /// available; the conventional protocols lose their write share.
    #[test]
    fn tab_avail_p4_keeps_full_availability() {
        for (label, points) in tab_avail() {
            for (write_fraction, availability) in points {
                if label.starts_with("DeDiSys") {
                    assert!(availability > 0.999, "{label}: {availability}");
                } else {
                    let expected = 1.0 - write_fraction;
                    assert!(
                        (availability - expected).abs() < 0.05,
                        "{label} at {write_fraction}: {availability}"
                    );
                }
            }
        }
    }

    /// Figure 5.6: the full-history policy is slower in both
    /// reconciliation phases; the reduced policy folds duplicates back
    /// towards the identical-once storage figure.
    #[test]
    fn fig5_6_full_history_reconciles_slower() {
        let rows = fig5_6();
        let once = &rows[0];
        let full = &rows[1];
        let reduced = &rows[2];
        assert_eq!(once.stored_threats, 200);
        assert_eq!(full.stored_threats, 1000);
        assert!(full.replica > once.replica);
        assert!(full.constraint > once.constraint);
        // Background compaction keeps the reduced store close to the
        // identical-once figure — and far below the full history.
        assert!(
            reduced.stored_threats < full.stored_threats / 2,
            "reduced stored {} vs full {}",
            reduced.stored_threats,
            full.stored_threats
        );
        assert!(reduced.replica < full.replica);
    }

    /// Figure 5.6 (incremental): the object-indexed engine re-evaluates
    /// strictly fewer identities than the full scan in the
    /// multi-partition scenario, with identical outcomes, and its
    /// constraint-phase cost does not scale with the away-partition
    /// threat count.
    #[test]
    fn fig5_6_incremental_skips_unreachable_threats() {
        let rows = fig5_6_incremental();
        assert_eq!(rows.len(), 6);
        for pair in rows.chunks(2) {
            let full = &pair[0];
            let incr = &pair[1];
            assert_eq!(full.away, incr.away);
            // Full scan touches everything; incremental only the dirty set.
            assert_eq!(full.skipped, 0, "{}", full.label);
            assert!(
                incr.skipped >= full.away,
                "{}: skipped {}",
                incr.label,
                incr.skipped
            );
            assert!(
                incr.re_evaluated < full.re_evaluated,
                "{}: {} vs {}",
                incr.label,
                incr.re_evaluated,
                full.re_evaluated
            );
            // Identical reconciliation outcomes (§3.3 correctness).
            assert_eq!(
                full.satisfied_removed, incr.satisfied_removed,
                "{}",
                incr.label
            );
            assert_eq!(full.violations, incr.violations, "{}", incr.label);
            assert_eq!(full.deferred, incr.deferred, "{}", incr.label);
            assert_eq!(full.postponed, incr.postponed, "{}", incr.label);
            assert!(incr.constraint < full.constraint, "{}", incr.label);
        }
        // The incremental constraint phase is flat in the away count
        // while the full scan grows.
        let incr_small = &rows[1];
        let incr_large = &rows[5];
        let full_small = &rows[0];
        let full_large = &rows[4];
        assert!(full_large.constraint > full_small.constraint);
        assert_eq!(incr_small.re_evaluated, incr_large.re_evaluated);
    }

    /// Abstract conclusion: replication pays off only for read-heavy
    /// workloads; write-heavy workloads get worse with more nodes.
    #[test]
    fn tab_worth_crossover() {
        let data = tab_worth();
        // 99% reads at 3 nodes beats the single server…
        let three = &data[2].1;
        assert!(three.last().unwrap().1 > 1.0);
        // …but 50% reads never does.
        for (_, points) in &data {
            assert!(points[0].1 < 1.0);
        }
        // Write-heavy degrades with node count.
        assert!(data[3].1[0].1 < data[1].1[0].1);
    }
}
