//! The reproduction driver: regenerates every table and figure of the
//! dissertation's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dedisys-bench --bin repro -- <experiment>|all [--trace <path>]
//! ```
//!
//! Experiments: fig1-3, fig2-1 … fig2-6, tab2-lookup, fig5-1 … fig5-4,
//! fig5-6, fig5-8, tab5-async, tab5-psc. See DESIGN.md for the
//! per-experiment index and EXPERIMENTS.md for a recorded run.
//!
//! `repro chaos-soak [--seed S] [--nodes N] [--ops O] [--faults F]
//! [--sweep K] [--detector] [--trace <path>]` runs the seeded chaos
//! engine instead: one reproducible fault-injection run (optionally
//! traced to JSONL), or a sweep over seeds `0..K`. With `--detector`
//! the cluster runs the adaptive failure-detection pipeline under a
//! weighted-quorum primary policy and the plan draws from the
//! extended fault vocabulary (link flaps, asymmetric loss, jitter,
//! torn journal writes). Exits 1 on any invariant violation.
//!
//! `repro flap-sweep [--seed S] [--nodes N] [--flaps F] [--sweep K]
//! [--trace <path>]` runs the failure-detection damping study: link
//! flapping at several periods against the fixed-timeout +
//! passthrough baseline and the φ-accrual detector across damping
//! windows, printing the spurious-transition table. Exits 1 unless
//! the adaptive pipeline is strictly quieter than the baseline on
//! every row (and on every seed of a `--sweep`).
//!
//! `repro overload-sweep [--seed S] [--nodes N] [--ticks T]
//! [--trace <path>]` runs the request-plane overload study: goodput
//! and Critical-class p99 latency per offered load and system mode,
//! token-bucket admission + priority shedding against a no-admission
//! FIFO baseline on the same arrivals. Exits 1 unless the plane's
//! Critical p99 is strictly below the baseline's at the highest
//! offered load in both modes.
//!
//! `repro shard-sweep [--seed S] [--nodes N] [--ticks T] [--sweep K]
//! [--trace <path>]` runs the federation study: goodput and
//! cross-shard abort rate per shard count, offered load and partition
//! pattern, with cross-shard 2PC (including coordinator crashes
//! recovered by presumed abort) under the `RejectDegraded` routing
//! policy. Exits 1 if transferred value is not conserved across the
//! shards in any cell. With `--sweep K` it runs the K-seed cross-shard
//! chaos soak instead, exiting 1 on any invariant violation.
//!
//! `repro fig-par [--trace <path>]` runs the batch-validation pool
//! study: the same validation-heavy workload under serial and
//! `Threads(8)` evaluation, reporting the wall-clock speedup and
//! checking that stats and traces are byte-identical across the two
//! modes (exits 1 otherwise). With `--trace` the two JSONL traces are
//! written to `<path>.serial` / `<path>.parallel` for external diffs.
//!
//! `repro fig-compile [--trace <path>]` runs the constraint-engine
//! study: one invariant-heavy workload under the interpreted walker,
//! the compiled programs, and compiled + verdict cache, reporting the
//! deterministic virtual-time validation cost per engine and checking
//! that verdicts are transparent across all three (exits 1 otherwise).
//! With `--trace` the three JSONL traces are written to
//! `<path>.interp` / `<path>.compiled` / `<path>.cached`.
//!
//! `--trace <path>` exports the typed telemetry stream of every cluster
//! the Chapter 5 experiments build as JSONL — one `{seq, at, event}`
//! object per line, stamped in virtual time only, so two runs of the
//! same experiment write byte-identical files.

use dedisys_bench::{
    ch2, ch5, chaos_soak, fig_compile, fig_par, flap_sweep, overload_sweep, shard_sweep,
};
use std::path::PathBuf;

const CH2: &[&str] = &[
    "fig2-1",
    "fig2-2",
    "fig2-3",
    "fig2-4",
    "fig2-5",
    "fig2-6",
    "tab2-lookup",
];
const CH5: &[&str] = &[
    "fig1-3",
    "fig5-1",
    "fig5-2",
    "fig5-3",
    "fig5-4",
    "fig5-6",
    "fig5-8",
    "tab5-async",
    "tab5-psc",
    "tab-avail",
    "tab-worth",
];

fn usage() -> ! {
    eprintln!("usage: repro <experiment>|ch2|ch5|all [--trace <path>]");
    eprintln!(
        "       repro chaos-soak [--seed S] [--nodes N] [--ops O] [--faults F] \
         [--sweep K] [--detector] [--trace <path>]"
    );
    eprintln!(
        "       repro flap-sweep [--seed S] [--nodes N] [--flaps F] [--sweep K] \
         [--trace <path>]"
    );
    eprintln!("       repro overload-sweep [--seed S] [--nodes N] [--ticks T] [--trace <path>]");
    eprintln!(
        "       repro shard-sweep [--seed S] [--nodes N] [--ticks T] [--sweep K] \
         [--trace <path>]"
    );
    eprintln!("       repro fig-par [--trace <path>]");
    eprintln!("       repro fig-compile [--trace <path>]");
    eprintln!(
        "experiments: {}",
        CH2.iter()
            .chain(CH5)
            .cloned()
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args: Vec<String> = Vec::new();
    let mut trace: Option<PathBuf> = None;
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--trace" {
            match it.next() {
                Some(path) => trace = Some(path.into()),
                None => {
                    eprintln!("--trace needs a file path");
                    usage();
                }
            }
        } else {
            args.push(arg);
        }
    }
    if args.is_empty() {
        usage();
    }
    if args[0] == "chaos-soak" {
        chaos_soak_main(&args[1..], trace);
        return;
    }
    if args[0] == "flap-sweep" {
        flap_sweep_main(&args[1..], trace);
        return;
    }
    if args[0] == "overload-sweep" {
        overload_sweep_main(&args[1..], trace);
        return;
    }
    if args[0] == "shard-sweep" {
        shard_sweep_main(&args[1..], trace);
        return;
    }
    if args[0] == "fig-par" {
        // Writes `<path>.serial` / `<path>.parallel` itself — the
        // shared append-to-one-file tracing below does not apply.
        fig_par::run(trace.as_deref());
        return;
    }
    if args[0] == "fig-compile" {
        // Writes `<path>.interp` / `<path>.compiled` / `<path>.cached`
        // itself, one per engine configuration.
        fig_compile::run(trace.as_deref());
        return;
    }
    if let Some(path) = &trace {
        // Truncate once; each cluster's exporter then appends, so one
        // file accumulates the traces of every experiment requested.
        std::fs::File::create(path).expect("create trace file");
        ch5::set_trace_path(Some(path.clone()));
    }
    for arg in &args {
        match arg.as_str() {
            "all" => {
                for id in CH5.iter().chain(CH2) {
                    dispatch(id);
                }
            }
            "ch2" => CH2.iter().for_each(|id| dispatch(id)),
            "ch5" => CH5.iter().for_each(|id| dispatch(id)),
            id => dispatch(id),
        }
    }
    if let Some(path) = &trace {
        ch5::set_trace_path(None);
        eprintln!("trace written to {}", path.display());
    }
}

fn chaos_soak_main(args: &[String], trace: Option<PathBuf>) {
    let mut opts = chaos_soak::SoakOptions {
        trace,
        ..chaos_soak::SoakOptions::default()
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 2;
        match args.get(*i - 1) {
            Some(v) => v.clone(),
            None => {
                eprintln!("{flag} needs a value");
                usage();
            }
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => opts.seed = value(&mut i, "--seed").parse().expect("--seed: u64"),
            "--nodes" => opts.nodes = value(&mut i, "--nodes").parse().expect("--nodes: u32"),
            "--ops" => opts.ops = value(&mut i, "--ops").parse().expect("--ops: u64"),
            "--faults" => {
                opts.faults = value(&mut i, "--faults").parse().expect("--faults: usize");
            }
            "--sweep" => {
                opts.sweep = Some(value(&mut i, "--sweep").parse().expect("--sweep: u64"));
            }
            "--detector" => {
                opts.detector = true;
                i += 1;
            }
            other => {
                eprintln!("unknown chaos-soak flag '{other}'");
                usage();
            }
        }
    }
    if opts.sweep.is_some() && opts.trace.is_some() {
        eprintln!("--trace applies to single runs only, not sweeps");
        usage();
    }
    if let Some(path) = &opts.trace {
        // Truncate once; the engine's exporter appends.
        std::fs::File::create(path).expect("create trace file");
    }
    chaos_soak::run(&opts);
}

fn flap_sweep_main(args: &[String], trace: Option<PathBuf>) {
    let mut opts = flap_sweep::FlapSweepOptions {
        trace,
        ..flap_sweep::FlapSweepOptions::default()
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 2;
        match args.get(*i - 1) {
            Some(v) => v.clone(),
            None => {
                eprintln!("{flag} needs a value");
                usage();
            }
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => opts.seed = value(&mut i, "--seed").parse().expect("--seed: u64"),
            "--nodes" => opts.nodes = value(&mut i, "--nodes").parse().expect("--nodes: u32"),
            "--flaps" => opts.flaps = value(&mut i, "--flaps").parse().expect("--flaps: u32"),
            "--sweep" => {
                opts.sweep = Some(value(&mut i, "--sweep").parse().expect("--sweep: u64"));
            }
            other => {
                eprintln!("unknown flap-sweep flag '{other}'");
                usage();
            }
        }
    }
    assert!(opts.nodes >= 3, "flap-sweep needs a quorum-capable cluster");
    if opts.sweep.is_some() && opts.trace.is_some() {
        eprintln!("--trace applies to single runs only, not sweeps");
        usage();
    }
    if let Some(path) = &opts.trace {
        // Truncate once; every cell's exporter appends.
        std::fs::File::create(path).expect("create trace file");
    }
    flap_sweep::run(&opts);
}

fn overload_sweep_main(args: &[String], trace: Option<PathBuf>) {
    let mut opts = overload_sweep::OverloadOptions {
        trace,
        ..overload_sweep::OverloadOptions::default()
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 2;
        match args.get(*i - 1) {
            Some(v) => v.clone(),
            None => {
                eprintln!("{flag} needs a value");
                usage();
            }
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => opts.seed = value(&mut i, "--seed").parse().expect("--seed: u64"),
            "--nodes" => opts.nodes = value(&mut i, "--nodes").parse().expect("--nodes: u32"),
            "--ticks" => opts.ticks = value(&mut i, "--ticks").parse().expect("--ticks: u32"),
            other => {
                eprintln!("unknown overload-sweep flag '{other}'");
                usage();
            }
        }
    }
    assert!(opts.nodes >= 2, "overload-sweep needs at least two nodes");
    assert!(opts.ticks >= 1, "overload-sweep needs at least one tick");
    if let Some(path) = &opts.trace {
        // Truncate once; every cell's exporter appends.
        std::fs::File::create(path).expect("create trace file");
    }
    overload_sweep::run(&opts);
}

fn shard_sweep_main(args: &[String], trace: Option<PathBuf>) {
    let mut opts = shard_sweep::ShardSweepOptions {
        trace,
        ..shard_sweep::ShardSweepOptions::default()
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 2;
        match args.get(*i - 1) {
            Some(v) => v.clone(),
            None => {
                eprintln!("{flag} needs a value");
                usage();
            }
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => opts.seed = value(&mut i, "--seed").parse().expect("--seed: u64"),
            "--nodes" => opts.nodes = value(&mut i, "--nodes").parse().expect("--nodes: u32"),
            "--ticks" => opts.ticks = value(&mut i, "--ticks").parse().expect("--ticks: u32"),
            "--sweep" => {
                opts.sweep = Some(value(&mut i, "--sweep").parse().expect("--sweep: u64"));
            }
            other => {
                eprintln!("unknown shard-sweep flag '{other}'");
                usage();
            }
        }
    }
    assert!(
        opts.nodes >= 2,
        "shard-sweep needs at least two nodes per shard"
    );
    assert!(opts.ticks >= 3, "shard-sweep needs at least three ticks");
    if opts.sweep.is_some() && opts.trace.is_some() {
        eprintln!("--trace applies to single runs only, not sweeps");
        usage();
    }
    if let Some(path) = &opts.trace {
        // Truncate once; every cell's exporter appends.
        std::fs::File::create(path).expect("create trace file");
    }
    shard_sweep::run(&opts);
}

fn dispatch(id: &str) {
    if CH2.contains(&id) {
        ch2::run(id);
    } else if CH5.contains(&id) {
        ch5::run(id);
    } else {
        eprintln!("unknown experiment '{id}'");
        std::process::exit(2);
    }
}
