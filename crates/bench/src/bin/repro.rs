//! The reproduction driver: regenerates every table and figure of the
//! dissertation's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dedisys-bench --bin repro -- <experiment>|all
//! ```
//!
//! Experiments: fig1-3, fig2-1 … fig2-6, tab2-lookup, fig5-1 … fig5-4,
//! fig5-6, fig5-8, tab5-async, tab5-psc. See DESIGN.md for the
//! per-experiment index and EXPERIMENTS.md for a recorded run.

use dedisys_bench::{ch2, ch5};

const CH2: &[&str] = &[
    "fig2-1",
    "fig2-2",
    "fig2-3",
    "fig2-4",
    "fig2-5",
    "fig2-6",
    "tab2-lookup",
];
const CH5: &[&str] = &[
    "fig1-3",
    "fig5-1",
    "fig5-2",
    "fig5-3",
    "fig5-4",
    "fig5-6",
    "fig5-8",
    "tab5-async",
    "tab5-psc",
    "tab-avail",
    "tab-worth",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <experiment>|ch2|ch5|all");
        eprintln!(
            "experiments: {}",
            CH2.iter()
                .chain(CH5)
                .cloned()
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }
    for arg in &args {
        match arg.as_str() {
            "all" => {
                for id in CH5.iter().chain(CH2) {
                    dispatch(id);
                }
            }
            "ch2" => CH2.iter().for_each(|id| dispatch(id)),
            "ch5" => CH5.iter().for_each(|id| dispatch(id)),
            id => dispatch(id),
        }
    }
}

fn dispatch(id: &str) {
    if CH2.contains(&id) {
        ch2::run(id);
    } else if CH5.contains(&id) {
        ch5::run(id);
    } else {
        eprintln!("unknown experiment '{id}'");
        std::process::exit(2);
    }
}
