//! `repro fig-compile` — validation cost of the interpreted expression
//! walker vs the compiled constraint programs vs the compiled programs
//! with the version-keyed verdict cache, with the verdict-transparency
//! contract checked on every run.
//!
//! One deterministic invariant-heavy workload (Chapter-2-style write
//! rounds interleaved with §3.3 full constraint sweeps, followed by a
//! Figure-5-6-style degraded-mode episode) is driven three times from
//! the same seed state, once per engine configuration. The table
//! reports the deterministic *virtual-time* cost of validation — the
//! quantity the `CostModel` charges per check (1000 µs interpreted,
//! 120 µs compiled, 20 µs per cache probe) — plus wall clock for
//! orientation. Verdicts must be **transparent**: mode, cluster/CCM/
//! replication/tx counters, threat identities and every sweep's
//! violating-object list are identical across the three runs — the run
//! exits non-zero if they diverge.
//!
//! With `--trace <path>` the three JSONL traces are written to
//! `<path>.interp`, `<path>.compiled` and `<path>.cached` so external
//! tooling (the CI smoke job) can check each configuration is
//! self-deterministic across repeated runs. The traces are *not*
//! expected to match across configurations — compiled runs emit
//! `constraint_compiled` events and cached runs emit hit/miss/
//! invalidate events at different virtual times by design.

use crate::table::{f2, print_table};
use dedisys_constraints::{
    expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
};
use dedisys_core::{
    nodes, Cluster, ClusterBuilder, ConstraintEngine, DeferAll, HighestVersionWins, JsonlExporter,
    StatsSnapshot,
};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{ConstraintName, NodeId, ObjectId, SatisfactionDegree, Value};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Constraints registered on the counter class.
const CONSTRAINTS: usize = 12;

/// Objects in the workload pool.
const OBJECTS: usize = 16;

/// A `Write` sink into a shared byte buffer, so the JSONL trace of a
/// cluster can be inspected after the cluster (and the `BufWriter`
/// inside its exporter) is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("trace buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn app() -> AppDescriptor {
    AppDescriptor::new("fig-compile").with_class(
        ClassDescriptor::new("Counter")
            .with_field("n", Value::Int(0))
            .with_field("reserve", Value::Int(0))
            .with_field("max", Value::Int(1000)),
    )
}

/// Twelve expression constraints over the counter, cycling through
/// arithmetic shapes so the compiled programs have real work (constant
/// folding, multi-op stacks) — all satisfied by the workload's writes
/// except when a round deliberately overshoots.
fn constraints() -> Vec<RegisteredConstraint> {
    let shapes = [
        "self.n <= self.max",
        "self.n + self.reserve <= self.max",
        "self.n * 2 <= self.max * 2",
        "self.n + 1 <= self.max + 1",
    ];
    (0..CONSTRAINTS)
        .map(|i| {
            RegisteredConstraint::new(
                ConstraintMeta::new(format!("Budget-{i:02}"))
                    .tradeable(SatisfactionDegree::PossiblySatisfied),
                Arc::new(ExprConstraint::parse(shapes[i % shapes.len()]).unwrap()),
            )
            .context_class("Counter")
            .affects("Counter", "setN", ContextPreparation::CalledObject)
            .affects("Counter", "setReserve", ContextPreparation::CalledObject)
        })
        .collect()
}

/// One engine configuration of the study.
struct EngineConfig {
    label: &'static str,
    engine: ConstraintEngine,
    cache: bool,
    /// Trace-file suffix under `--trace`.
    suffix: &'static str,
}

const CONFIGS: [EngineConfig; 3] = [
    EngineConfig {
        label: "Interpreted",
        engine: ConstraintEngine::Interpreted,
        cache: false,
        suffix: ".interp",
    },
    EngineConfig {
        label: "Compiled",
        engine: ConstraintEngine::Compiled,
        cache: false,
        suffix: ".compiled",
    },
    EngineConfig {
        label: "Compiled+cache",
        engine: ConstraintEngine::Compiled,
        cache: true,
        suffix: ".cached",
    },
];

/// The outcome of one configuration's run.
pub struct ModeRun {
    /// Configuration label.
    pub label: String,
    /// Wall-clock time of the workload loop.
    pub wall: Duration,
    /// The full statistics snapshot.
    pub stats: StatsSnapshot,
    /// Verdict-cache hits / misses (`ccm.verdict_cache.*`).
    pub hits: u64,
    /// See [`ModeRun::hits`].
    pub misses: u64,
    /// The verdict fingerprint — everything that must be identical
    /// across configurations.
    pub fingerprint: String,
    /// The JSONL telemetry trace, byte for byte.
    pub trace: Vec<u8>,
}

/// Every verdict-level observable: mode plus the cluster/CCM/
/// replication/tx counters (virtual time, the telemetry registry and
/// the event count legitimately differ across engines), the threat
/// identities, and the violating-object list of every sweep.
fn fingerprint(cluster: &Cluster, sweeps: &[(String, Vec<ObjectId>)]) -> String {
    let stats = serde_json::to_value(cluster.stats()).expect("stats serialize");
    let verdicts = serde_json::json!({
        "mode": stats["mode"],
        "cluster": stats["cluster"],
        "ccm": stats["ccm"],
        "replication": stats["replication"],
        "tx": stats["tx"],
    });
    format!(
        "{verdicts}\nthreats: {:?}\nsweeps: {sweeps:?}",
        cluster.threats().identities()
    )
}

/// A §3.3 full sweep: disable + re-enable every constraint with the
/// mandated re-check over all context objects. On the cached
/// configuration, sweeps over unchanged objects answer from the memo.
fn sweep(cluster: &mut Cluster, sweeps: &mut Vec<(String, Vec<ObjectId>)>) {
    for i in 0..CONSTRAINTS {
        let name = ConstraintName::from(format!("Budget-{i:02}"));
        cluster
            .set_constraint_enabled(&name, false)
            .expect("disable");
        let violating = cluster
            .enable_constraint_with_check(&name)
            .expect("re-enable sweep");
        sweeps.push((name.to_string(), violating));
    }
}

/// Runs the workload under one engine configuration.
pub fn measure(engine: ConstraintEngine, cache: bool, label: &str, rounds: usize) -> ModeRun {
    let buf = SharedBuf::default();
    let mut cluster = ClusterBuilder::new(3, app())
        .constraints(constraints())
        .configure(|c| {
            c.validation.engine = engine;
            c.validation.verdict_cache = cache;
        })
        .build()
        .expect("cluster");
    cluster
        .telemetry()
        .attach(Box::new(JsonlExporter::new(Box::new(buf.clone()))));
    let node = NodeId(0);
    let pool: Vec<ObjectId> = (0..OBJECTS)
        .map(|i| {
            let id = ObjectId::new("Counter", format!("ctr-{i:02}"));
            let e = id.clone();
            cluster
                .run_tx(node, move |c, tx| {
                    c.create(node, tx, EntityState::for_class(c.app(), &e)?)
                })
                .expect("pool creation");
            id
        })
        .collect();
    let mut sweeps: Vec<(String, Vec<ObjectId>)> = Vec::new();
    let start = Instant::now();
    // Chapter-2-style rounds: a few writes, then a full sweep. Only a
    // sliver of the pool changes per round, so most sweep checks are
    // re-validations of unchanged committed state — the verdict
    // cache's target case.
    for round in 0..rounds {
        for w in 0..3 {
            let id = pool[(round * 3 + w) % pool.len()].clone();
            let value = ((round + w) % 900) as i64;
            cluster
                .run_tx(node, move |c, tx| {
                    c.set_field(node, tx, &id, "n", Value::Int(value))
                })
                .expect("write");
        }
        sweep(&mut cluster, &mut sweeps);
    }
    // Figure-5-6-style degraded episode: a minority partition keeps
    // writing under tradeable constraints (threats accrue), then the
    // cluster heals and reconciles.
    let _ = cluster.partition(&[nodes![0, 1], nodes![2]]);
    for (i, id) in pool.iter().take(4).cloned().enumerate() {
        let _ = cluster.run_tx(node, move |c, tx| {
            c.set_field(node, tx, &id, "reserve", Value::Int(10 + i as i64))
        });
        let id = pool[(i + 4) % pool.len()].clone();
        let _ = cluster.run_tx(NodeId(2), move |c, tx| {
            c.set_field(NodeId(2), tx, &id, "reserve", Value::Int(20 + i as i64))
        });
    }
    cluster.heal();
    cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    // Two closing sweeps: the second touches no changed state at all,
    // so on the cached configuration it runs entirely from the memo.
    sweep(&mut cluster, &mut sweeps);
    sweep(&mut cluster, &mut sweeps);
    let wall = start.elapsed();
    let stats = cluster.stats();
    let counter = |name: &str| stats.telemetry.counters.get(name).copied().unwrap_or(0);
    let hits = counter("ccm.verdict_cache.hit");
    let misses = counter("ccm.verdict_cache.miss");
    let print = fingerprint(&cluster, &sweeps);
    // Dropping the cluster flushes the exporter's buffered writer into
    // the shared buffer.
    drop(cluster);
    let trace = buf.0.lock().expect("trace buffer poisoned").clone();
    ModeRun {
        label: label.to_owned(),
        wall,
        stats,
        hits,
        misses,
        fingerprint: print,
        trace,
    }
}

/// Runs all three configurations. Returns the runs for the unit tests.
pub fn fig_compile(rounds: usize) -> Vec<ModeRun> {
    CONFIGS
        .iter()
        .map(|c| measure(c.engine, c.cache, c.label, rounds))
        .collect()
}

/// Runs and prints the experiment; writes `<path>.interp` /
/// `<path>.compiled` / `<path>.cached` when a trace path is given.
/// Exits non-zero when any configuration's verdicts diverge from the
/// interpreted baseline.
pub fn run(trace: Option<&Path>) {
    let rounds = 12;
    let runs = fig_compile(rounds);
    let base_virtual = runs[0].stats.now_ns as f64;
    let rows = runs
        .iter()
        .map(|run| {
            vec![
                run.label.clone(),
                format!("{:.1}", run.stats.now_ns as f64 / 1e6),
                f2(base_virtual / run.stats.now_ns as f64),
                format!("{:.1}", run.wall.as_secs_f64() * 1_000.0),
                run.hits.to_string(),
                run.misses.to_string(),
                run.trace.len().to_string(),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        &format!(
            "fig-compile — constraint engines, {rounds} write/sweep rounds × \
             {CONSTRAINTS} constraints over {OBJECTS} objects + degraded episode"
        ),
        &[
            "engine",
            "virtual ms",
            "speedup",
            "wall ms",
            "cache hits",
            "misses",
            "trace bytes",
        ],
        &rows,
    );
    let transparent = runs
        .iter()
        .all(|run| run.fingerprint == runs[0].fingerprint);
    println!(
        "  verdicts: {}; Compiled+cache virtual-time speedup: {:.2}×",
        if transparent {
            "transparent across all engines"
        } else {
            "DIVERGED"
        },
        base_virtual / runs[2].stats.now_ns as f64,
    );
    if let Some(path) = trace {
        for (config, run) in CONFIGS.iter().zip(&runs) {
            let mut file = path.as_os_str().to_owned();
            file.push(config.suffix);
            std::fs::write(&file, &run.trace).expect("write trace file");
        }
        eprintln!(
            "traces written to {}.interp / .compiled / .cached",
            path.display()
        );
    }
    if !transparent {
        eprintln!("fig-compile: verdict-transparency contract violated");
        std::process::exit(1);
    }
    if runs[2].stats.now_ns >= runs[0].stats.now_ns {
        eprintln!("fig-compile: Compiled+cache failed to beat Interpreted in virtual time");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Verdict transparency and the virtual-time ordering on a small
    /// instance: Interpreted > Compiled > Compiled+cache, identical
    /// fingerprints throughout, and the cache actually hit.
    #[test]
    fn engines_are_transparent_and_cache_is_cheapest() {
        let runs = fig_compile(3);
        for run in &runs[1..] {
            assert_eq!(
                runs[0].fingerprint, run.fingerprint,
                "verdicts diverged under {}",
                run.label
            );
        }
        assert!(
            runs[0].stats.now_ns > runs[1].stats.now_ns,
            "compiled checks must be cheaper than interpreted"
        );
        assert!(
            runs[1].stats.now_ns > runs[2].stats.now_ns,
            "cache probes must be cheaper than compiled re-checks"
        );
        assert!(runs[2].hits > 0, "repeated sweeps hit the cache");
        assert_eq!(runs[0].hits + runs[1].hits, 0, "cache off ⇒ no hits");
        for run in &runs {
            assert!(!run.trace.is_empty(), "trace captured for {}", run.label);
        }
    }
}
