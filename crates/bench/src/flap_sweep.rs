//! The `flap-sweep` driver behind `repro flap-sweep`: quantifies how
//! much spurious mode churn the adaptive failure detector and the
//! flap-damping view stabilizer absorb, against the fixed-timeout
//! detector with a passthrough stabilizer on the same seed.
//!
//! For each flap period the driver runs one detector-driven cluster
//! per stabilizer setting, flaps the last node's physical links
//! `flaps` times (with a majority-side write per cycle to keep the
//! quorum gate exercised), lets the pipeline quiesce, and reads the
//! `gms.detector.transitions` counter — detector-caused mode
//! transitions, all of them spurious because the cluster is healthy
//! again at the end. The adaptive column with the default damping
//! window must come out strictly below the fixed-timeout baseline,
//! and no cell may end with standing suspicions or a primary-
//! exclusivity conflict (exit 1 otherwise).
//!
//! Everything runs on the virtual clock with seeded jitter draws:
//! the same seed reproduces the table — and a `--trace` JSONL file —
//! byte for byte.

use dedisys_core::{
    ClusterBuilder, DetectorKind, JsonlExporter, MinorityWriteHandling, PrimaryPartitionPolicy,
    StabilizerConfig,
};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{NodeId, ObjectId, SimDuration, Value};
use std::path::{Path, PathBuf};

/// Flap half-cycle lengths swept by the table, in milliseconds. All
/// exceed the fixed detector's 350 ms suspect timeout, so the
/// baseline suspects (and reinstalls views) on every single flap.
const PERIODS_MS: &[u64] = &[400, 600, 900];

/// Stabilizer settle windows swept per period, in milliseconds. The
/// middle value is [`StabilizerConfig::default`]'s window.
const SETTLES_MS: &[u64] = &[150, 300, 600];

/// Standing heartbeat jitter, so different seeds draw different
/// arrival patterns and the φ estimator has a spread to adapt to.
const HEARTBEAT_JITTER_MICROS: u64 = 20_000;

/// CLI options of `repro flap-sweep`.
#[derive(Debug, Clone)]
pub struct FlapSweepOptions {
    /// Seed of the pipeline's deterministic loss/jitter draws.
    pub seed: u64,
    /// Cluster size (the last node flaps; the rest stay a quorum).
    pub nodes: u32,
    /// Down/up cycles per table cell.
    pub flaps: u32,
    /// Run seeds `0..n` at the default period instead of one table.
    pub sweep: Option<u64>,
    /// JSONL trace destination (single runs only; cells append).
    pub trace: Option<PathBuf>,
}

impl Default for FlapSweepOptions {
    fn default() -> Self {
        Self {
            seed: 0,
            nodes: 5,
            flaps: 8,
            sweep: None,
            trace: None,
        }
    }
}

/// What one cluster run of the sweep table produced.
struct CellOutcome {
    /// Detector-caused mode transitions (`gms.detector.transitions`).
    transitions: u64,
    /// Suspicion flips absorbed by flap damping.
    damped: u64,
    /// Standing suspicions after quiescence (must be zero).
    standing: usize,
    /// Primary-exclusivity conflicts (must be zero).
    conflicts: u64,
}

fn run_cell(
    opts: &FlapSweepOptions,
    period: SimDuration,
    kind: DetectorKind,
    stabilizer: StabilizerConfig,
    trace: Option<&Path>,
) -> CellOutcome {
    let app = AppDescriptor::new("flap-sweep")
        .with_class(ClassDescriptor::new("Item").with_field("n", Value::Int(0)));
    let mut cluster = ClusterBuilder::new(opts.nodes, app)
        .configure(|c| {
            c.membership.detector_enabled = true;
            c.membership.detector = kind;
            c.membership.stabilizer = stabilizer;
            c.membership.seed = opts.seed;
            c.membership.primary_policy = PrimaryPartitionPolicy::WeightedQuorum;
            c.membership.minority_writes = MinorityWriteHandling::Degrade;
        })
        .build()
        .expect("flap-sweep cluster");
    if let Some(path) = trace {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open trace file");
        cluster
            .telemetry()
            .attach(Box::new(JsonlExporter::new(Box::new(file))));
    }
    cluster
        .set_default_link_jitter(HEARTBEAT_JITTER_MICROS)
        .expect("pipeline enabled");
    let id = ObjectId::new("Item", "I-0");
    let seed_id = id.clone();
    cluster
        .run_tx(NodeId(0), move |c, tx| {
            c.create(NodeId(0), tx, EntityState::for_class(c.app(), &seed_id)?)
        })
        .expect("seed item");
    let flapper = NodeId(opts.nodes - 1);
    let rest: Vec<NodeId> = (0..opts.nodes - 1).map(NodeId).collect();
    for round in 0..opts.flaps {
        cluster
            .drop_links(&[vec![flapper], rest.clone()])
            .expect("drop links");
        cluster.run_detector_for(period);
        // One majority-side write per cycle: the quorum gate admits it
        // and witnesses the partition for the exclusivity invariant.
        let wid = id.clone();
        let value = Value::Int(i64::from(round));
        let _ = cluster.run_tx(NodeId(0), move |c, tx| {
            c.set_field(NodeId(0), tx, &wid, "n", value)
        });
        cluster.heal_links().expect("heal links");
        // Healing clears standing link faults including the default
        // jitter — re-arm it so every cycle draws from the same
        // seeded spread.
        cluster
            .set_default_link_jitter(HEARTBEAT_JITTER_MICROS)
            .expect("pipeline enabled");
        cluster.run_detector_for(period);
    }
    // Quiesce: decay the damping penalties and settle the healthy view.
    let mut rounds = 0;
    while rounds < 120 && (cluster.standing_suspicions() > 0 || !cluster.topology().is_healthy()) {
        cluster.run_detector_for(SimDuration::from_secs(1));
        rounds += 1;
    }
    let metrics = cluster.telemetry().metrics();
    CellOutcome {
        transitions: metrics.counter("gms.detector.transitions"),
        damped: metrics.counter("gms.detector.flaps_damped"),
        standing: cluster.standing_suspicions(),
        conflicts: cluster.primary_conflicts(),
    }
}

/// Runs the sweep per `opts`; exits the process with status 1 when
/// the adaptive pipeline fails to beat the baseline or an invariant
/// breaks.
pub fn run(opts: &FlapSweepOptions) {
    match opts.sweep {
        Some(n) => sweep(opts, n),
        None => single(opts),
    }
}

fn check_cell(label: &str, cell: &CellOutcome, failures: &mut u64) {
    if cell.standing != 0 {
        eprintln!(
            "flap-sweep: {label}: {} standing suspicion(s) after quiescence",
            cell.standing
        );
        *failures += 1;
    }
    if cell.conflicts != 0 {
        eprintln!(
            "flap-sweep: {label}: {} primary-exclusivity conflict(s)",
            cell.conflicts
        );
        *failures += 1;
    }
}

fn single(opts: &FlapSweepOptions) {
    println!(
        "flap-sweep seed {} ({} nodes, {} flaps per cell, flapping n{})",
        opts.seed,
        opts.nodes,
        opts.flaps,
        opts.nodes - 1
    );
    println!("  spurious mode transitions by flap period x damping window:");
    println!(
        "  period | fixed+passthrough | settle=150ms | settle=300ms | settle=600ms | damped@300ms"
    );
    let mut failures = 0u64;
    for &period_ms in PERIODS_MS {
        let period = SimDuration::from_millis(period_ms);
        let baseline = run_cell(
            opts,
            period,
            DetectorKind::FixedTimeout,
            StabilizerConfig::passthrough(),
            opts.trace.as_deref(),
        );
        let adaptives: Vec<CellOutcome> = SETTLES_MS
            .iter()
            .map(|&settle_ms| {
                run_cell(
                    opts,
                    period,
                    DetectorKind::Adaptive,
                    StabilizerConfig {
                        settle: SimDuration::from_millis(settle_ms),
                        ..StabilizerConfig::default()
                    },
                    opts.trace.as_deref(),
                )
            })
            .collect();
        println!(
            "  {period_ms:>4}ms | {:>17} | {:>12} | {:>12} | {:>12} | {:>12}",
            baseline.transitions,
            adaptives[0].transitions,
            adaptives[1].transitions,
            adaptives[2].transitions,
            adaptives[1].damped
        );
        let default_adaptive = &adaptives[1];
        if baseline.transitions == 0 {
            eprintln!(
                "flap-sweep: period {period_ms}ms: baseline produced no transitions — nothing to damp"
            );
            failures += 1;
        } else if default_adaptive.transitions >= baseline.transitions {
            eprintln!(
                "flap-sweep: period {period_ms}ms: adaptive {} >= fixed-timeout {}",
                default_adaptive.transitions, baseline.transitions
            );
            failures += 1;
        }
        check_cell(
            &format!("period {period_ms}ms baseline"),
            &baseline,
            &mut failures,
        );
        for (settle_ms, cell) in SETTLES_MS.iter().zip(&adaptives) {
            check_cell(
                &format!("period {period_ms}ms settle {settle_ms}ms"),
                cell,
                &mut failures,
            );
        }
    }
    println!(
        "  verdict: {}",
        if failures == 0 {
            "adaptive + damping strictly below fixed-timeout on every row".to_string()
        } else {
            format!("{failures} FAILURE(S)")
        }
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

fn sweep(opts: &FlapSweepOptions, seeds: u64) {
    let period = SimDuration::from_millis(600);
    let mut dirty = 0u64;
    for seed in 0..seeds {
        let cell_opts = FlapSweepOptions {
            seed,
            trace: None,
            ..opts.clone()
        };
        let baseline = run_cell(
            &cell_opts,
            period,
            DetectorKind::FixedTimeout,
            StabilizerConfig::passthrough(),
            None,
        );
        let adaptive = run_cell(
            &cell_opts,
            period,
            DetectorKind::Adaptive,
            StabilizerConfig::default(),
            None,
        );
        let mut failures = 0u64;
        if baseline.transitions == 0 {
            eprintln!("flap-sweep: seed {seed}: baseline produced no transitions");
            failures += 1;
        } else if adaptive.transitions >= baseline.transitions {
            eprintln!(
                "flap-sweep: seed {seed}: adaptive {} >= fixed-timeout {}",
                adaptive.transitions, baseline.transitions
            );
            failures += 1;
        }
        check_cell(&format!("seed {seed} baseline"), &baseline, &mut failures);
        check_cell(&format!("seed {seed} adaptive"), &adaptive, &mut failures);
        if failures > 0 {
            dirty += 1;
        }
    }
    println!(
        "flap-sweep sweep: {seeds} seeds x {} flaps at 600ms — {dirty} seed(s) with failures",
        opts.flaps
    );
    if dirty > 0 {
        std::process::exit(1);
    }
}
