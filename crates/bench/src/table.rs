//! Minimal fixed-width table printing for the `repro` binary.

/// Prints a header followed by aligned rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title}");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("  {}", out.trim_end());
    };
    line(&header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats an ops/sec value with one decimal.
pub fn ops(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(ops(74.26), "74.3");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
    }
}
