//! `repro fig-par` — wall-clock speedup of the sharded batch-validation
//! pool, with the determinism contract checked on every run.
//!
//! A validation-heavy workload (64 CPU-bound constraints attached to
//! one write method) is driven twice from the same seed state: once
//! with [`ValidationParallelism::Serial`], once with
//! `ValidationParallelism::Threads(8)`. The table reports the
//! wall-clock speedup; virtual time, the full [`StatsSnapshot`] and
//! the JSONL telemetry trace must be **byte-identical** across the two
//! runs — the run exits non-zero if they diverge.
//!
//! With `--trace <path>` the two traces are additionally written to
//! `<path>.serial` and `<path>.parallel` so external tooling (the CI
//! smoke job) can diff them.

use crate::table::{f2, print_table};
use dedisys_constraints::{
    ConstraintMeta, ContextPreparation, RegisteredConstraint, ValidationContext,
};
use dedisys_core::{Cluster, ClusterBuilder, JsonlExporter, StatsSnapshot, ValidationParallelism};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState, MethodDescriptor, MethodKind};
use dedisys_types::{NodeId, ObjectId, Value};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Constraints attached to the `stir` method — the batch size of every
/// post-validation (64 candidates ⇒ 8 canonical shards).
const CONSTRAINTS: usize = 64;

/// Objects in the workload pool.
const OBJECTS: usize = 32;

/// A `Write` sink into a shared byte buffer, so the JSONL trace of a
/// cluster can be inspected after the cluster (and the `BufWriter`
/// inside its exporter) is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("trace buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn app() -> AppDescriptor {
    AppDescriptor::new("fig-par").with_class(
        ClassDescriptor::new("Cell")
            .with_field("load", Value::Int(0))
            .with_method(MethodDescriptor::with_kind("stir", MethodKind::Write)),
    )
}

/// One always-satisfied constraint that burns a deterministic amount
/// of CPU (`spin` mixing rounds) — validation cost without validation
/// outcome variance.
fn spin_constraint(index: usize, spin: u32) -> RegisteredConstraint {
    RegisteredConstraint::new(
        ConstraintMeta::new(format!("Spin-{index:02}")),
        Arc::new(move |ctx: &mut ValidationContext<'_>| {
            let base = ctx.self_field("load")?.as_int().unwrap_or(0) as u64;
            let mut h = 0xcbf2_9ce4_8422_2325_u64 ^ base.wrapping_add(index as u64);
            for round in 0..spin {
                h ^= u64::from(round);
                h = h.wrapping_mul(0x0100_0000_01b3);
                h = std::hint::black_box(h.rotate_left(17));
            }
            // Always true, but opaque enough that the mixing loop is
            // not optimized away.
            Ok(std::hint::black_box(h) | 1 != 0)
        }),
    )
    .context_class("Cell")
    .affects("Cell", "stir", ContextPreparation::CalledObject)
}

/// The outcome of one mode's run.
pub struct ModeRun {
    /// Mode label.
    pub label: String,
    /// Wall-clock time of the invocation loop.
    pub wall: Duration,
    /// Multi-candidate batches the run recorded (`ccm.batches`).
    pub batches: u64,
    /// The full statistics snapshot, for cross-mode comparison.
    pub stats: StatsSnapshot,
    /// The JSONL telemetry trace, byte for byte.
    pub trace: Vec<u8>,
}

/// Runs the workload under one parallelism setting.
pub fn measure(parallelism: ValidationParallelism, label: &str, ops: usize, spin: u32) -> ModeRun {
    let buf = SharedBuf::default();
    let mut builder =
        ClusterBuilder::new(3, app()).configure(|c| c.validation.parallelism = parallelism);
    for i in 0..CONSTRAINTS {
        builder = builder.constraint(spin_constraint(i, spin));
    }
    let mut cluster: Cluster = builder.build().expect("cluster");
    cluster
        .telemetry()
        .attach(Box::new(JsonlExporter::new(Box::new(buf.clone()))));
    let node = NodeId(0);
    let pool: Vec<ObjectId> = (0..OBJECTS)
        .map(|i| {
            let id = ObjectId::new("Cell", format!("cell-{i}"));
            let e = id.clone();
            cluster
                .run_tx(node, move |c, tx| {
                    c.create(node, tx, EntityState::for_class(c.app(), &e)?)
                })
                .expect("pool creation");
            id
        })
        .collect();
    let start = Instant::now();
    for i in 0..ops {
        let id = pool[i % pool.len()].clone();
        cluster
            .run_tx(node, move |c, tx| c.invoke(node, tx, &id, "stir", vec![]))
            .expect("stir");
    }
    let wall = start.elapsed();
    let stats = cluster.stats();
    let batches = stats
        .telemetry
        .counters
        .get("ccm.batches")
        .copied()
        .unwrap_or(0);
    // Dropping the cluster flushes the exporter's buffered writer into
    // the shared buffer.
    drop(cluster);
    let trace = buf.0.lock().expect("trace buffer poisoned").clone();
    ModeRun {
        label: label.to_owned(),
        wall,
        batches,
        stats,
        trace,
    }
}

/// Serializes a snapshot for cross-mode equality checking (the type
/// deliberately has no `PartialEq`; JSON is its canonical form).
fn stats_json(stats: &StatsSnapshot) -> String {
    serde_json::to_string(stats).expect("stats serialize")
}

/// Runs both modes, prints the speedup table and enforces the
/// determinism contract. Returns the runs for the unit tests.
pub fn fig_par(ops: usize, spin: u32) -> (ModeRun, ModeRun) {
    let serial = measure(ValidationParallelism::Serial, "Serial", ops, spin);
    let parallel = measure(ValidationParallelism::Threads(8), "Threads(8)", ops, spin);
    (serial, parallel)
}

/// Runs and prints the experiment; writes `<path>.serial` /
/// `<path>.parallel` when a trace path is given. Exits non-zero when
/// the two runs are not byte-identical.
pub fn run(trace: Option<&Path>) {
    let ops = 200;
    let spin = 30_000;
    let (serial, parallel) = fig_par(ops, spin);
    let speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64();
    let trace_matches = serial.trace == parallel.trace;
    let stats_match = stats_json(&serial.stats) == stats_json(&parallel.stats);
    let rows = [&serial, &parallel]
        .iter()
        .map(|run| {
            vec![
                run.label.clone(),
                format!("{:.1}", run.wall.as_secs_f64() * 1_000.0),
                f2(serial.wall.as_secs_f64() / run.wall.as_secs_f64()),
                run.batches.to_string(),
                format!("{:.1}", run.stats.now_ns as f64 / 1e6),
                run.trace.len().to_string(),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        &format!(
            "fig-par — batch validation pool, {ops} ops × {CONSTRAINTS} constraints \
             ({spin} spin rounds each)"
        ),
        &[
            "mode",
            "wall ms",
            "speedup",
            "batches",
            "virtual ms",
            "trace bytes",
        ],
        &rows,
    );
    println!(
        "  Threads(8) speedup: {speedup:.2}×; trace: {}; stats: {}",
        if trace_matches {
            "byte-identical across modes"
        } else {
            "DIVERGED"
        },
        if stats_match { "identical" } else { "DIVERGED" },
    );
    if let Some(path) = trace {
        let mut write = |suffix: &str, bytes: &[u8]| {
            let mut file = path.as_os_str().to_owned();
            file.push(suffix);
            std::fs::write(&file, bytes).expect("write trace file");
        };
        write(".serial", &serial.trace);
        write(".parallel", &parallel.trace);
        eprintln!(
            "traces written to {}.serial / {}.parallel",
            path.display(),
            path.display()
        );
    }
    if !trace_matches || !stats_match {
        eprintln!("fig-par: determinism contract violated (serial vs Threads(8))");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The determinism contract on a small instance: identical stats
    /// and byte-identical traces across all parallelism settings.
    #[test]
    fn parallel_runs_are_byte_identical_to_serial() {
        let serial = measure(ValidationParallelism::Serial, "s", 6, 10);
        for workers in [2, 4, 8] {
            let parallel = measure(ValidationParallelism::Threads(workers), "p", 6, 10);
            assert_eq!(
                stats_json(&serial.stats),
                stats_json(&parallel.stats),
                "stats diverged at Threads({workers})"
            );
            assert_eq!(
                serial.trace, parallel.trace,
                "trace diverged at Threads({workers})"
            );
        }
        assert!(!serial.trace.is_empty(), "trace captured");
        assert!(serial.batches > 0, "multi-candidate batches recorded");
    }
}
