//! Property tests for the adaptive failure-detection pipeline: seeded
//! determinism (byte-identical JSONL traces), convergence back to
//! healthy with zero standing suspicions after heal + quiescence, and
//! primary-partition exclusivity under the weighted-quorum policy.

use dedisys_core::{
    Cluster, ClusterBuilder, DeferAll, DetectorKind, HighestVersionWins, JsonlExporter,
    MinorityWriteHandling, PrimaryPartitionPolicy, StabilizerConfig,
};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{NodeId, ObjectId, SimDuration, SystemMode, Value};
use proptest::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` sink into a shared buffer, read back after the cluster
/// (and its exporter's `BufWriter`) is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("trace buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn app() -> AppDescriptor {
    AppDescriptor::new("adaptive")
        .with_class(ClassDescriptor::new("Item").with_field("n", Value::Int(0)))
}

/// Builds a detector-driven cluster: φ-accrual detection, default
/// flap damping, weighted-quorum primary policy, minority writes
/// admitted as degraded.
fn build(nodes: u32, seed: u64) -> Cluster {
    ClusterBuilder::new(nodes, app())
        .configure(|c| {
            c.membership.detector_enabled = true;
            c.membership.detector = DetectorKind::Adaptive;
            c.membership.stabilizer = StabilizerConfig::default();
            c.membership.seed = seed;
            c.membership.primary_policy = PrimaryPartitionPolicy::WeightedQuorum;
            c.membership.minority_writes = MinorityWriteHandling::Degrade;
        })
        .build()
        .expect("detector cluster")
}

/// The number of current partitions that classify as primary under
/// the cluster's quorum policy — must never exceed one.
fn primary_partitions(cluster: &Cluster) -> usize {
    cluster
        .topology()
        .partitions()
        .iter()
        .filter(|p| p.iter().next().is_some_and(|n| cluster.is_primary(*n)))
        .count()
}

/// Runs a seeded flap scenario purely through the physical link layer
/// (the pipeline has to detect everything itself), checking primary
/// exclusivity after every detector step, then heals, quiesces, and
/// reconciles. Returns the cluster for final assertions.
fn run_scenario(
    seed: u64,
    nodes: u32,
    flaps: u32,
    period_ms: u64,
    trace: Option<SharedBuf>,
) -> Cluster {
    let mut cluster = build(nodes, seed);
    if let Some(buf) = trace {
        cluster
            .telemetry()
            .attach(Box::new(JsonlExporter::new(Box::new(buf))));
    }
    cluster
        .set_default_link_jitter(15_000)
        .expect("pipeline enabled");
    let id = ObjectId::new("Item", "I-0");
    let seed_id = id.clone();
    cluster
        .run_tx(NodeId(0), move |c, tx| {
            c.create(NodeId(0), tx, EntityState::for_class(c.app(), &seed_id)?)
        })
        .expect("seed item");
    let victim = NodeId(1 + (seed % u64::from(nodes - 1)) as u32);
    let rest: Vec<NodeId> = (0..nodes).map(NodeId).filter(|n| *n != victim).collect();
    let period = SimDuration::from_millis(period_ms);
    for round in 0..flaps {
        cluster
            .drop_links(&[vec![victim], rest.clone()])
            .expect("drop links");
        cluster.run_detector_for(period);
        assert!(primary_partitions(&cluster) <= 1, "two primaries at once");
        // A write on each side of the physical cut: the quorum gate
        // admits the majority one as primary, the victim's (if the
        // cut was detected) as degraded.
        for &writer in &[NodeId(0), victim] {
            let wid = id.clone();
            let value = Value::Int(i64::from(round));
            let _ = cluster.run_tx(writer, move |c, tx| {
                c.set_field(writer, tx, &wid, "n", value)
            });
        }
        cluster.heal_links().expect("heal links");
        cluster
            .set_default_link_jitter(15_000)
            .expect("pipeline enabled");
        cluster.run_detector_for(period);
        assert!(primary_partitions(&cluster) <= 1, "two primaries at once");
    }
    // Heal and quiesce: penalties decay, the healthy view settles.
    cluster.heal_links().expect("heal links");
    let mut rounds = 0;
    while rounds < 120 && (cluster.standing_suspicions() > 0 || !cluster.topology().is_healthy()) {
        cluster.run_detector_for(SimDuration::from_secs(1));
        assert!(primary_partitions(&cluster) <= 1, "two primaries at once");
        rounds += 1;
    }
    if cluster.needs_reconciliation() {
        cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    }
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed, same scenario ⇒ byte-identical JSONL traces. The
    /// pipeline's suspicion, damping and install events are a pure
    /// function of the seed and the virtual clock.
    #[test]
    fn same_seed_produces_byte_identical_traces(
        seed in 0u64..1_000,
        period_ms in 300u64..800,
    ) {
        let capture = | | {
            let buf = SharedBuf::default();
            {
                let _cluster = run_scenario(seed, 4, 4, period_ms, Some(buf.clone()));
                // Dropping the cluster drops the exporter, which flushes.
            }
            let bytes = buf.0.lock().expect("trace buffer poisoned").clone();
            bytes
        };
        let (a, b) = (capture(), capture());
        prop_assert!(!a.is_empty(), "scenario produced no trace");
        prop_assert_eq!(a, b, "same-seed traces must match byte for byte");
    }

    /// After healing every physical link and letting the detector
    /// quiesce, no node suspects any other and the cluster is back in
    /// healthy mode — the flap damping may delay reintegration but
    /// never wedges it.
    #[test]
    fn healed_quiescent_cluster_is_healthy_with_zero_suspicions(
        seed in 0u64..1_000,
        nodes in 4u32..6,
        flaps in 1u32..5,
        period_ms in 300u64..800,
    ) {
        let cluster = run_scenario(seed, nodes, flaps, period_ms, None);
        prop_assert_eq!(cluster.standing_suspicions(), 0, "standing suspicions after quiescence");
        prop_assert!(cluster.topology().is_healthy(), "topology still split");
        prop_assert_eq!(cluster.mode(), SystemMode::Healthy);
    }

    /// Under the weighted-quorum policy at most one partition ever
    /// classifies as primary: checked live after every detector step
    /// (inside the scenario) and sealed by the write-admission witness.
    #[test]
    fn weighted_quorum_admits_at_most_one_primary_partition(
        seed in 0u64..1_000,
        nodes in 4u32..6,
        flaps in 1u32..5,
        period_ms in 300u64..800,
    ) {
        let cluster = run_scenario(seed, nodes, flaps, period_ms, None);
        prop_assert_eq!(cluster.primary_conflicts(), 0, "primary-exclusivity conflicts recorded");
    }
}
