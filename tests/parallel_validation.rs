//! The determinism contract of the batch-validation pool: under any
//! workload schedule and any worker count, a cluster produces the
//! same `StatsSnapshot` and a **byte-identical** JSONL telemetry
//! trace as the serial evaluation path.

use dedisys_chaos::{ChaosConfig, ChaosEngine};
use dedisys_constraints::{
    expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
};
use dedisys_core::{
    nodes, ClusterBuilder, DeferAll, HighestVersionWins, JsonlExporter, ValidationParallelism,
};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{NodeId, ObjectId, SatisfactionDegree, Value};
use proptest::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` sink into a shared buffer, read back after the cluster
/// (and its exporter's `BufWriter`) is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("trace buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn app() -> AppDescriptor {
    AppDescriptor::new("par").with_class(
        ClassDescriptor::new("Counter")
            .with_field("n", Value::Int(0))
            .with_field("max", Value::Int(100)),
    )
}

/// Twelve copies of the bounded constraint, so every write validates a
/// multi-shard batch; tradeable, so degraded-mode runs produce threats
/// and negotiation traffic too.
fn constraints() -> Vec<RegisteredConstraint> {
    (0..12)
        .map(|i| {
            RegisteredConstraint::new(
                ConstraintMeta::new(format!("Bounded-{i:02}"))
                    .tradeable(SatisfactionDegree::PossiblySatisfied),
                Arc::new(ExprConstraint::parse("self.n <= self.max").unwrap()),
            )
            .context_class("Counter")
            .affects("Counter", "setN", ContextPreparation::CalledObject)
        })
        .collect()
}

/// One step of a random workload schedule, decoded from raw tuples.
type Step = (u8, u32, usize, i64);

/// Runs `schedule` on a fresh cluster under `parallelism`; returns the
/// serialized [`dedisys_core::StatsSnapshot`] and the raw JSONL trace.
fn run_schedule(parallelism: ValidationParallelism, schedule: &[Step]) -> (String, Vec<u8>) {
    let buf = SharedBuf::default();
    let mut cluster = ClusterBuilder::new(3, app())
        .constraints(constraints())
        .configure(|c| c.validation.parallelism = parallelism)
        .build()
        .unwrap();
    cluster
        .telemetry()
        .attach(Box::new(JsonlExporter::new(Box::new(buf.clone()))));
    let objects: Vec<ObjectId> = (0..4)
        .map(|i| {
            let id = ObjectId::new("Counter", format!("c{i}"));
            let e = id.clone();
            cluster
                .run_tx(NodeId(0), move |c, tx| {
                    c.create(NodeId(0), tx, EntityState::for_class(c.app(), &e)?)
                })
                .unwrap();
            id
        })
        .collect();
    for &(action, node_raw, obj, value) in schedule {
        match action % 8 {
            0 => {
                let _ = cluster.partition(&[nodes![0], nodes![1], nodes![2]]);
            }
            1 => {
                cluster.heal();
                cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
            }
            _ => {
                let node = NodeId(node_raw % 3);
                let id = objects[obj % objects.len()].clone();
                // Degraded or over-limit writes may abort; the
                // determinism contract covers failures too.
                let _ = cluster.run_tx(node, move |c, tx| {
                    c.set_field(node, tx, &id, "n", Value::Int(value))
                });
            }
        }
    }
    cluster.heal();
    cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    let stats = serde_json::to_string(&cluster.stats()).unwrap();
    drop(cluster);
    let trace = buf.0.lock().expect("trace buffer poisoned").clone();
    (stats, trace)
}

/// Runs one seeded chaos soak under `parallelism`; returns the
/// serialized final stats, the ok/failed op counts and the JSONL trace.
fn run_chaos(parallelism: ValidationParallelism, seed: u64) -> (String, (u64, u64), Vec<u8>) {
    let buf = SharedBuf::default();
    let engine = ChaosEngine::new(ChaosConfig {
        nodes: 3,
        ops: 120,
        faults: 10,
        item_pool: 8,
        seed,
        parallelism,
        ..ChaosConfig::default()
    })
    .unwrap();
    engine
        .cluster()
        .telemetry()
        .attach(Box::new(JsonlExporter::new(Box::new(buf.clone()))));
    let report = engine.run().unwrap();
    let stats = serde_json::to_string(&report.final_stats).unwrap();
    let trace = buf.0.lock().expect("trace buffer poisoned").clone();
    (stats, (report.ops_ok, report.ops_failed), trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serial vs `Threads(n)`: identical stats, byte-identical traces,
    /// for random schedules of writes, partitions, heals and
    /// reconciliations.
    #[test]
    fn random_workloads_are_parallelism_invariant(
        workers in 2usize..9,
        schedule in prop::collection::vec(
            (any::<u8>(), 0u32..3, 0usize..4, 0i64..200),
            1..24,
        ),
    ) {
        let (serial_stats, serial_trace) =
            run_schedule(ValidationParallelism::Serial, &schedule);
        let (par_stats, par_trace) =
            run_schedule(ValidationParallelism::Threads(workers), &schedule);
        prop_assert_eq!(serial_stats, par_stats, "stats diverged at Threads({})", workers);
        prop_assert!(!serial_trace.is_empty(), "trace captured");
        prop_assert_eq!(serial_trace, par_trace, "trace diverged at Threads({})", workers);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full chaos engine — random faults, crashes, partitions,
    /// in-doubt recovery — is equally parallelism-invariant.
    #[test]
    fn chaos_runs_are_parallelism_invariant(
        seed in 0u64..1000,
        workers in 2usize..9,
    ) {
        let (serial_stats, serial_ops, serial_trace) =
            run_chaos(ValidationParallelism::Serial, seed);
        let (par_stats, par_ops, par_trace) =
            run_chaos(ValidationParallelism::Threads(workers), seed);
        prop_assert_eq!(serial_ops, par_ops);
        prop_assert_eq!(serial_stats, par_stats, "stats diverged at seed {}", seed);
        prop_assert!(!serial_trace.is_empty(), "trace captured");
        prop_assert_eq!(serial_trace, par_trace, "trace diverged at seed {}", seed);
    }
}
