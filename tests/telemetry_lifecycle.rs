//! Telemetry lifecycle integration tests: a full partition → degraded
//! writes → heal → reconciliation scenario observed through the trace
//! bus, plus the hard determinism requirement — two identically-seeded
//! runs export byte-identical JSONL.

use dedisys_constraints::{
    expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
};
use dedisys_core::{
    Cluster, ClusterBuilder, DeferAll, HighestVersionWins, JsonlExporter, RingRecorder, TraceEvent,
    TraceRecord,
};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{NodeId, ObjectId, SatisfactionDegree, SystemMode, Value};
use std::io::Write;
use std::sync::{Arc, Mutex};

fn app() -> AppDescriptor {
    AppDescriptor::new("inv").with_class(
        ClassDescriptor::new("Counter")
            .with_field("n", Value::Int(0))
            .with_field("max", Value::Int(100)),
    )
}

fn bounded_constraint() -> RegisteredConstraint {
    RegisteredConstraint::new(
        ConstraintMeta::new("Bounded").tradeable(SatisfactionDegree::PossiblySatisfied),
        Arc::new(ExprConstraint::parse("self.n <= self.max").unwrap()),
    )
    .context_class("Counter")
    .affects("Counter", "setN", ContextPreparation::CalledObject)
}

fn build() -> Cluster {
    ClusterBuilder::new(3, app())
        .constraint(bounded_constraint())
        .build()
        .unwrap()
}

/// The canonical degraded-mode lifecycle: healthy writes, a 1/2 split,
/// threat-recording writes in the majority-less partition, repair and
/// two-step reconciliation.
fn run_lifecycle(cluster: &mut Cluster) {
    let id = ObjectId::new("Counter", "c1");
    let node = NodeId(0);
    let e = id.clone();
    cluster
        .run_tx(node, move |c, tx| {
            c.create(node, tx, EntityState::for_class(c.app(), &e)?)
        })
        .unwrap();

    assert_eq!(
        cluster
            .partition(&[vec![NodeId(0)], vec![NodeId(1), NodeId(2)]])
            .unwrap(),
        SystemMode::Degraded
    );
    cluster
        .run_tx(node, |c, tx| c.set_field(node, tx, &id, "n", Value::Int(5)))
        .unwrap();
    assert!(
        !cluster.threats().is_empty(),
        "degraded write records threat"
    );

    assert_eq!(cluster.heal(), SystemMode::Reconciliation);
    let summary = cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    assert!(summary.constraints.re_evaluated >= 1);
    assert_eq!(cluster.mode(), SystemMode::Healthy);
}

#[test]
fn lifecycle_emits_the_expected_event_stream() {
    let mut cluster = build();
    let ring = RingRecorder::new(4096);
    cluster.telemetry().attach(Box::new(ring.clone()));

    run_lifecycle(&mut cluster);

    // Every stage of the lifecycle is witnessed by a typed event.
    for kind in [
        "invocation_start",
        "invocation_end",
        "trigger_point",
        "constraint_validated",
        "tx_begin",
        "tx_commit",
        "threat_recorded",
        "mode_transition",
        "reconcile_replica_phase",
        "reconcile_constraint_phase",
    ] {
        assert!(
            !ring.records_of_kind(kind).is_empty(),
            "expected at least one '{kind}' event; got kinds {:?}",
            ring.kinds()
        );
    }

    // The mode walks Figure 1.4: Healthy → Degraded → Reconciliation →
    // Healthy, each edge announced exactly once.
    let modes: Vec<(SystemMode, SystemMode)> = ring
        .records_of_kind("mode_transition")
        .iter()
        .map(|r| match r.event {
            TraceEvent::ModeTransition { from, to, .. } => (from, to),
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(
        modes,
        vec![
            (SystemMode::Healthy, SystemMode::Degraded),
            (SystemMode::Degraded, SystemMode::Reconciliation),
            (SystemMode::Reconciliation, SystemMode::Healthy),
        ]
    );

    // Constraint reconciliation found the accepted threat satisfied.
    let recon = ring.records_of_kind("reconcile_constraint_phase");
    assert_eq!(recon.len(), 1);
    match recon[0].event {
        TraceEvent::ReconcileConstraintPhase {
            re_evaluated,
            satisfied_removed,
            ..
        } => {
            assert!(re_evaluated >= 1);
            assert!(satisfied_removed >= 1);
        }
        _ => unreachable!(),
    }

    // Sequence numbers are gapless and monotonic — the bus stamps them.
    let records = ring.records();
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "seq gap at index {i}");
    }

    // The unified snapshot agrees with the bus and serializes cleanly.
    let stats = cluster.stats();
    assert_eq!(stats.events_emitted, records.len() as u64);
    assert_eq!(stats.mode, SystemMode::Healthy);
    assert!(stats.cluster.invocations >= 1);
    assert_eq!(stats.cluster.creates, 1);
    let json = serde_json::to_string(&stats).unwrap();
    assert!(json.contains("\"mode\""), "{json}");
}

/// A `Write` target the test keeps a handle to after the exporter (and
/// the cluster owning it) is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn export_lifecycle() -> Vec<u8> {
    let buf = SharedBuf::default();
    {
        let mut cluster = build();
        cluster
            .telemetry()
            .attach(Box::new(JsonlExporter::new(Box::new(buf.clone()))));
        run_lifecycle(&mut cluster);
        // Dropping the cluster drops the exporter, which flushes.
    }
    let bytes = buf.0.lock().unwrap().clone();
    bytes
}

#[test]
fn same_seed_exports_byte_identical_jsonl() {
    let first = export_lifecycle();
    let second = export_lifecycle();
    assert!(!first.is_empty(), "exporter wrote nothing");
    assert_eq!(first, second, "trace streams diverged between runs");

    // Each line round-trips as a typed record and the stream covers a
    // representative slice of the event vocabulary.
    let text = String::from_utf8(first).unwrap();
    let mut kinds = std::collections::BTreeSet::new();
    let mut expected_seq = 0u64;
    for line in text.lines() {
        let record: TraceRecord = serde_json::from_str(line).unwrap();
        assert_eq!(record.seq, expected_seq);
        expected_seq += 1;
        kinds.insert(record.event.kind());
    }
    assert!(
        kinds.len() >= 8,
        "expected >= 8 distinct event kinds, got {kinds:?}"
    );
}
