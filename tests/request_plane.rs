//! The deterministic request plane end to end: strict priority
//! dispatch, token-bucket admission, displacement at the queue bound,
//! deadline shedding, mode-coupled backpressure, Refuse-mode
//! rejection, byte-identical same-seed traces and the conservation
//! invariant.

use dedisys_core::{
    nodes, ClusterBuilder, JsonlExporter, MinorityWriteHandling, PrimaryPartitionPolicy,
    RequestPlane, RingRecorder,
};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{Error, NodeId, ObjectId, PriorityClass, SimDuration, Value};
use std::io::Write;
use std::sync::{Arc, Mutex};

fn app() -> AppDescriptor {
    AppDescriptor::new("plane")
        .with_class(ClassDescriptor::new("Item").with_field("v", Value::Int(0)))
}

fn cluster_with(f: impl FnOnce(&mut dedisys_core::ClusterConfig)) -> dedisys_core::Cluster {
    let mut c = ClusterBuilder::new(3, app()).configure(f).build().unwrap();
    for i in 0..3 {
        let id = ObjectId::new("Item", format!("i{i}"));
        c.run_tx(NodeId(0), move |c, tx| {
            c.create(NodeId(0), tx, EntityState::for_class(c.app(), &id)?)
        })
        .unwrap();
    }
    c
}

/// A submitted write that records its own execution order.
fn write_order(
    order: &Arc<Mutex<Vec<u64>>>,
    tag: u64,
) -> impl for<'a> FnOnce(dedisys_core::Session<'a>) -> dedisys_types::Result<()> + 'static {
    let order = Arc::clone(order);
    move |mut session| {
        order.lock().unwrap().push(tag);
        let id = ObjectId::new("Item", "i0");
        session.set_field(&id, "v", Value::Int(tag as i64))?;
        session.commit()
    }
}

#[test]
fn dispatch_is_strict_priority_then_fifo() {
    let mut c = cluster_with(|_| {});
    let mut plane = RequestPlane::new();
    let order = Arc::new(Mutex::new(Vec::new()));
    // Submission order deliberately inverts priority order.
    for (tag, class) in [
        (1, PriorityClass::Background),
        (2, PriorityClass::Normal),
        (3, PriorityClass::Critical),
        (4, PriorityClass::Background),
        (5, PriorityClass::Normal),
        (6, PriorityClass::Critical),
    ] {
        plane
            .submit_with_deadline(&mut c, NodeId(0), class, None, write_order(&order, tag))
            .unwrap();
    }
    let report = plane.run_until_idle(&mut c);
    assert_eq!(report.queued, 0);
    assert_eq!(report.stats.total().completed, 6);
    assert_eq!(
        *order.lock().unwrap(),
        vec![3, 6, 2, 5, 1, 4],
        "Critical first, FIFO within each class"
    );
}

#[test]
fn empty_token_bucket_refuses_then_refills_on_the_virtual_clock() {
    let mut c = cluster_with(|cfg| {
        cfg.plane.burst = 2;
        cfg.plane.refill_per_second = 1;
    });
    let mut plane = RequestPlane::new();
    let ok = |_s: dedisys_core::Session<'_>| Ok(());
    plane
        .submit_with_deadline(&mut c, NodeId(0), PriorityClass::Normal, None, ok)
        .unwrap();
    plane
        .submit_with_deadline(&mut c, NodeId(0), PriorityClass::Normal, None, ok)
        .unwrap();
    // The burst is spent; the third arrival is refused at admission.
    let refused = plane.submit_with_deadline(&mut c, NodeId(0), PriorityClass::Normal, None, ok);
    assert!(matches!(refused, Err(Error::Overloaded { .. })));
    // Tokens accrue on the virtual clock: one second buys one token.
    c.clock().advance(SimDuration::from_secs(1));
    plane
        .submit_with_deadline(&mut c, NodeId(0), PriorityClass::Normal, None, ok)
        .unwrap();
    assert_eq!(plane.stats().normal.rejected, 1);
    assert_eq!(plane.stats().normal.admitted, 3);
    // Other nodes hold their own buckets — NodeId(1) is unaffected.
    plane
        .submit_with_deadline(&mut c, NodeId(1), PriorityClass::Normal, None, ok)
        .unwrap();
    assert!(plane.conserves());
}

#[test]
fn full_queue_displaces_lower_priority_or_rejects() {
    let mut c = cluster_with(|cfg| {
        cfg.plane.queue_capacity = 2;
        cfg.plane.burst = 16;
    });
    let ring = RingRecorder::new(256);
    c.telemetry().attach(Box::new(ring.clone()));
    let mut plane = RequestPlane::new();
    let ok = |_s: dedisys_core::Session<'_>| Ok(());
    for _ in 0..2 {
        plane
            .submit_with_deadline(&mut c, NodeId(0), PriorityClass::Background, None, ok)
            .unwrap();
    }
    // At the bound, a Critical arrival displaces the newest Background.
    plane
        .submit_with_deadline(&mut c, NodeId(0), PriorityClass::Critical, None, ok)
        .unwrap();
    assert_eq!(plane.stats().background.shed, 1);
    assert_eq!(ring.records_of_kind("request_shed").len(), 1);
    assert_eq!(plane.queue_depth(NodeId(0)), 2, "bound still respected");
    // A Background arrival finds nothing lower to displace: rejected.
    let refused =
        plane.submit_with_deadline(&mut c, NodeId(0), PriorityClass::Background, None, ok);
    assert!(matches!(refused, Err(Error::Overloaded { depth: 2, .. })));
    assert_eq!(ring.records_of_kind("request_rejected").len(), 1);
    assert!(plane.conserves());
}

#[test]
fn expired_deadlines_are_shed_before_execution() {
    let mut c = cluster_with(|_| {});
    let mut plane = RequestPlane::new();
    let ran = Arc::new(Mutex::new(false));
    let flag = Arc::clone(&ran);
    plane
        .submit_with_deadline(
            &mut c,
            NodeId(0),
            PriorityClass::Normal,
            Some(SimDuration::from_millis(1)),
            move |_s| {
                *flag.lock().unwrap() = true;
                Ok(())
            },
        )
        .unwrap();
    // The queue sits past the deadline before anything dispatches.
    c.clock().advance(SimDuration::from_millis(5));
    let report = plane.run_until_idle(&mut c);
    assert!(!*ran.lock().unwrap(), "expired work must never execute");
    assert_eq!(report.stats.normal.deadline_missed, 1);
    assert_eq!(report.stats.normal.completed, 0);
    assert!(plane.conserves());
}

#[test]
fn degraded_mode_sheds_background_first() {
    let mut c = cluster_with(|_| {});
    let ring = RingRecorder::new(256);
    c.telemetry().attach(Box::new(ring.clone()));
    let mut plane = RequestPlane::new();
    let order = Arc::new(Mutex::new(Vec::new()));
    plane
        .submit(&mut c, NodeId(0), PriorityClass::Background, {
            let order = Arc::clone(&order);
            move |_s| {
                order.lock().unwrap().push(1);
                Ok(())
            }
        })
        .unwrap();
    plane
        .submit(
            &mut c,
            NodeId(0),
            PriorityClass::Critical,
            write_order(&order, 2),
        )
        .unwrap();
    c.partition(&[nodes![0], nodes![1, 2]]).unwrap();
    let report = plane.run_until_idle(&mut c);
    // Background was queued first but never ran; Critical completed.
    assert_eq!(*order.lock().unwrap(), vec![2]);
    assert_eq!(report.stats.background.shed, 1);
    assert_eq!(report.stats.critical.completed, 1);
    let shed = ring.records_of_kind("request_shed");
    assert_eq!(shed.len(), 1);
    assert!(plane.conserves());
}

#[test]
fn background_survives_when_mode_shedding_is_disabled() {
    let mut c = cluster_with(|cfg| {
        cfg.plane.shed_background_when_degraded = false;
    });
    let mut plane = RequestPlane::new();
    let order = Arc::new(Mutex::new(Vec::new()));
    plane
        .submit(&mut c, NodeId(0), PriorityClass::Background, {
            let order = Arc::clone(&order);
            move |_s| {
                order.lock().unwrap().push(1);
                Ok(())
            }
        })
        .unwrap();
    c.partition(&[nodes![0], nodes![1, 2]]).unwrap();
    let report = plane.run_until_idle(&mut c);
    assert_eq!(*order.lock().unwrap(), vec![1]);
    assert_eq!(report.stats.background.shed, 0);
    assert_eq!(report.stats.background.completed, 1);
}

#[test]
fn refuse_mode_minority_rejects_at_admission() {
    let mut c = cluster_with(|cfg| {
        cfg.membership.primary_policy = PrimaryPartitionPolicy::MajorityNodes;
        cfg.membership.minority_writes = MinorityWriteHandling::Refuse;
    });
    let ring = RingRecorder::new(64);
    c.telemetry().attach(Box::new(ring.clone()));
    c.partition(&[nodes![0], nodes![1, 2]]).unwrap();
    let mut plane = RequestPlane::new();
    let ok = |_s: dedisys_core::Session<'_>| Ok(());
    // The minority node is refused before anything is queued.
    let refused = plane.submit(&mut c, NodeId(0), PriorityClass::Critical, ok);
    assert!(matches!(
        refused,
        Err(Error::NotPrimary {
            node: NodeId(0),
            partition_size: 1,
        })
    ));
    assert_eq!(plane.queue_depth(NodeId(0)), 0);
    assert_eq!(ring.records_of_kind("request_rejected").len(), 1);
    // The majority side still admits.
    plane
        .submit(&mut c, NodeId(1), PriorityClass::Critical, ok)
        .unwrap();
    let report = plane.run_until_idle(&mut c);
    assert_eq!(report.stats.critical.completed, 1);
    assert_eq!(report.stats.critical.rejected, 1);
    assert!(plane.conserves());
}

/// A `Write` sink into a shared buffer (see
/// `tests/engine_transparency.rs`).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One full mixed workload against a traced cluster; returns the raw
/// JSONL bytes plus the serde-independent `(seq, at, kind)` stream.
fn traced_workload() -> (Vec<u8>, Vec<(u64, u64, &'static str)>) {
    let buf = SharedBuf::default();
    let mut c = cluster_with(|cfg| {
        cfg.plane.queue_capacity = 4;
        cfg.plane.burst = 8;
        cfg.plane.refill_per_second = 100;
    });
    c.telemetry()
        .attach(Box::new(JsonlExporter::new(Box::new(buf.clone()))));
    let ring = RingRecorder::new(8192);
    c.telemetry().attach(Box::new(ring.clone()));
    let mut plane = RequestPlane::new();
    for round in 0u64..6 {
        for (i, class) in PriorityClass::ALL.iter().enumerate() {
            let node = NodeId(((round as u32) + i as u32) % 3);
            let tag = round * 10 + i as u64;
            let _ = plane.submit(&mut c, node, *class, move |mut session| {
                let id = ObjectId::new("Item", format!("i{}", tag % 3));
                session.set_field(&id, "v", Value::Int(tag as i64))?;
                session.commit()
            });
        }
        if round == 2 {
            c.partition(&[nodes![0, 1], nodes![2]]).unwrap();
        }
        if round == 4 {
            c.heal();
        }
        plane.run_until_idle(&mut c);
        c.clock().advance(SimDuration::from_millis(20));
    }
    assert!(plane.conserves());
    let stream: Vec<(u64, u64, &'static str)> = ring
        .records()
        .iter()
        .map(|r| (r.seq, r.at.as_nanos(), r.event.kind()))
        .collect();
    drop(c);
    let bytes = buf.0.lock().unwrap().clone();
    (bytes, stream)
}

#[test]
fn same_workload_produces_byte_identical_traces() {
    let (bytes_a, stream_a) = traced_workload();
    let (bytes_b, stream_b) = traced_workload();
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, bytes_b, "JSONL trace must be deterministic");
    assert!(
        stream_a.iter().any(|(_, _, k)| *k == "request_admitted"),
        "plane events present in the stream"
    );
    assert_eq!(stream_a, stream_b, "event stream must be deterministic");
}

#[test]
fn conservation_and_metrics_under_mixed_load() {
    let mut c = cluster_with(|cfg| {
        cfg.plane.queue_capacity = 3;
        cfg.plane.burst = 4;
        cfg.plane.refill_per_second = 50;
    });
    let mut plane = RequestPlane::new();
    let ok = |_s: dedisys_core::Session<'_>| Ok(());
    let mut admitted = 0u64;
    for _ in 0..40 {
        for class in PriorityClass::ALL {
            if plane.submit(&mut c, NodeId(0), class, ok).is_ok() {
                admitted += 1;
            }
        }
        c.clock().advance(SimDuration::from_millis(10));
        plane.step(&mut c);
    }
    plane.run_until_idle(&mut c);
    let t = plane.stats().total();
    assert_eq!(t.offered, 120);
    assert_eq!(t.admitted, admitted);
    assert_eq!(t.offered, t.admitted + t.rejected);
    assert_eq!(t.admitted, t.completed + t.shed + t.deadline_missed);
    assert!(plane.conserves());
    let snapshot = c.stats().telemetry;
    assert_eq!(snapshot.counters["plane.admitted"], admitted);
    assert_eq!(
        snapshot
            .counters
            .get("plane.completed")
            .copied()
            .unwrap_or(0),
        t.completed
    );
}
