//! Property-based tests over the core data structures and invariants.

use dedisys_constraints::expr::{self, ExprConstraint};
use dedisys_constraints::{MapAccess, ValidationContext};
use dedisys_core::nodes;
use dedisys_core::partition_sensitive::partition_share_weighted;
use dedisys_gc::{FifoReceiver, FifoSender};
use dedisys_gms::NodeWeights;
use dedisys_net::Topology;
use dedisys_types::{NodeId, ObjectId, SatisfactionDegree, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn degree_strategy() -> impl Strategy<Value = SatisfactionDegree> {
    prop::sample::select(SatisfactionDegree::ALL.to_vec())
}

proptest! {
    /// §3.1: combining a set of validation results equals the meet of
    /// the satisfaction-degree lattice — order-independent and
    /// associative.
    #[test]
    fn degree_combination_is_the_lattice_meet(
        mut degrees in prop::collection::vec(degree_strategy(), 1..8)
    ) {
        let combined = SatisfactionDegree::combine(degrees.clone());
        prop_assert_eq!(combined, *degrees.iter().min().unwrap());
        // Order independence.
        degrees.reverse();
        prop_assert_eq!(SatisfactionDegree::combine(degrees.clone()), combined);
        // Adding a satisfied constraint never changes the outcome.
        degrees.push(SatisfactionDegree::Satisfied);
        prop_assert_eq!(SatisfactionDegree::combine(degrees), combined);
    }

    /// Staleness degradation turns exactly the definite results into
    /// threats (Satisfied → PossiblySatisfied, Violated →
    /// PossiblyViolated) and is idempotent.
    #[test]
    fn staleness_degradation_properties(d in degree_strategy()) {
        let degraded = d.degrade_for_staleness();
        if d.is_threat() {
            prop_assert_eq!(degraded, d);
        } else {
            prop_assert!(degraded.is_threat());
        }
        // Idempotent: a second degradation changes nothing.
        prop_assert_eq!(degraded.degrade_for_staleness(), degraded);
        // Degradation never reaches Uncheckable — that only stems from
        // unreachable objects (NCC), not staleness (LCC).
        prop_assert!(d == SatisfactionDegree::Uncheckable || degraded != SatisfactionDegree::Uncheckable);
    }

    /// Weight apportioning always conserves the total (t = Σ tₓ) and
    /// never hands a partition more than everything.
    #[test]
    fn apportion_conserves_total(
        amount in 0u64..10_000,
        split_at in 1u32..4,
        weights in prop::collection::vec(1u32..5, 4)
    ) {
        let w = NodeWeights::explicit(weights);
        let left: BTreeSet<NodeId> = (0..split_at).map(NodeId).collect();
        let right: BTreeSet<NodeId> = (split_at..4).map(NodeId).collect();
        let shares = w.apportion(amount, &[left, right]);
        prop_assert_eq!(shares.iter().sum::<u64>(), amount);
        prop_assert!(shares.iter().all(|&s| s <= amount));
    }

    /// Integer-rational shares (§5.5.2 bugfix): over *any* disjoint
    /// weighting of the cluster the shares never sum above the
    /// remainder, each share is within bounds, and the undivided
    /// cluster receives exactly the remainder — properties the float
    /// path cannot guarantee under unlucky rounding.
    #[test]
    fn weighted_partition_shares_are_conservative(
        remaining in 0i64..1_000_000,
        weights in prop::collection::vec(0u32..1_000, 1..6),
    ) {
        let total: u32 = weights.iter().sum();
        let shares: Vec<i64> = weights
            .iter()
            .map(|&w| partition_share_weighted(remaining, w, total))
            .collect();
        for &share in &shares {
            prop_assert!(share >= 0);
            prop_assert!(share <= remaining.max(0));
        }
        prop_assert!(shares.iter().sum::<i64>() <= remaining.max(0));
        if total > 0 {
            prop_assert_eq!(
                partition_share_weighted(remaining, total, total),
                remaining.max(0)
            );
        }
    }

    /// Topology splits partition the node set: every node is in exactly
    /// one partition; reachability is reflexive and symmetric; healing
    /// restores a single partition.
    #[test]
    fn topology_split_partitions_the_nodes(
        n in 2u32..8,
        seed_groups in prop::collection::vec(prop::collection::vec(0u32..8, 0..4), 0..4)
    ) {
        let mut topo = Topology::fully_connected(n);
        // Deduplicate node indices across groups, dropping out-of-range.
        let mut seen = BTreeSet::new();
        let groups: Vec<Vec<u32>> = seed_groups
            .into_iter()
            .map(|g| g.into_iter().filter(|&x| x < n && seen.insert(x)).collect())
            .collect();
        let refs: Vec<&[u32]> = groups.iter().map(Vec::as_slice).collect();
        topo.split(&refs);
        let total: usize = topo.partitions().iter().map(BTreeSet::len).sum();
        prop_assert_eq!(total, n as usize);
        for a in topo.nodes() {
            prop_assert!(topo.reachable(a, a));
            for b in topo.nodes() {
                prop_assert_eq!(topo.reachable(a, b), topo.reachable(b, a));
            }
        }
        topo.heal();
        prop_assert!(topo.is_healthy());
    }

    /// FIFO delivery: any arrival permutation of a sender's messages is
    /// delivered in send order, exactly once.
    #[test]
    fn fifo_delivers_in_order_under_any_permutation(
        count in 1usize..20,
        seed in 0u64..1000
    ) {
        let mut sender = FifoSender::new(NodeId(0));
        let mut messages: Vec<_> = (0..count).map(|i| sender.stamp(i)).collect();
        // Deterministic shuffle.
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        for i in (1..messages.len()).rev() {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let j = (state as usize) % (i + 1);
            messages.swap(i, j);
        }
        let mut receiver = FifoReceiver::new();
        let mut delivered = Vec::new();
        for m in messages {
            delivered.extend(receiver.receive(m).into_iter().map(|m| m.payload));
        }
        prop_assert_eq!(delivered, (0..count).collect::<Vec<_>>());
    }

    /// The expression parser never panics on arbitrary input, and
    /// parseable expressions evaluate deterministically.
    #[test]
    fn expr_parser_total_and_eval_deterministic(input in "[a-z0-9 ()+*<=.\"-]{0,40}") {
        let parsed = ExprConstraint::parse(&input);
        if parsed.is_ok() {
            let id = ObjectId::new("X", "1");
            let mut w1 = MapAccess::new();
            w1.put_field(&id, "a", Value::Int(1));
            let mut w2 = w1.clone();
            let mut c1 = ValidationContext::for_invariant(id.clone(), &mut w1);
            let mut c2 = ValidationContext::for_invariant(id, &mut w2);
            let r1 = expr::eval_str(&input, &mut c1);
            let r2 = expr::eval_str(&input, &mut c2);
            prop_assert_eq!(r1, r2);
        }
    }

    /// Arithmetic in the expression language matches Rust semantics
    /// for integers.
    #[test]
    fn expr_integer_arithmetic_matches_rust(a in -1000i64..1000, b in 1i64..1000) {
        let id = ObjectId::new("X", "1");
        let mut w = MapAccess::new();
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        let sum = expr::eval_str(&format!("{a} + {b}"), &mut ctx).unwrap();
        prop_assert_eq!(sum, Value::Int(a + b));
        let div = expr::eval_str(&format!("{a} / {b}"), &mut ctx).unwrap();
        prop_assert_eq!(div, Value::Int(a / b));
        let cmp = expr::eval_str(&format!("{a} < {b}"), &mut ctx).unwrap();
        prop_assert_eq!(cmp, Value::Bool(a < b));
    }
}

mod expr_roundtrip {
    use super::*;
    use dedisys_constraints::expr::{parse, BinOp, Expr, UnaryOp};

    /// Strategy producing parser-reachable ASTs (non-negative numeric
    /// literals, identifier-shaped field names).
    fn expr_strategy() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (0i64..1000).prop_map(|n| Expr::Literal(Value::Int(n))),
            (0u32..1000).prop_map(|n| Expr::Literal(Value::Float(f64::from(n) + 0.5))),
            "[a-z]{1,6}".prop_map(|s| Expr::Literal(Value::Str(s))),
            Just(Expr::Literal(Value::Bool(true))),
            Just(Expr::Literal(Value::Bool(false))),
            Just(Expr::Literal(Value::Null)),
            Just(Expr::SelfRef),
            Just(Expr::MethodResult),
            (0usize..4).prop_map(Expr::Arg),
            "[a-z]{1,6}".prop_map(Expr::Env),
            "[a-z]{1,6}".prop_map(Expr::Pre),
            "[A-Z][a-z]{1,6}".prop_map(|c| Expr::Count(c.into())),
        ];
        leaf.prop_recursive(4, 32, 3, |inner| {
            let op = prop::sample::select(vec![
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Eq,
                BinOp::Ne,
                BinOp::And,
                BinOp::Or,
                BinOp::Implies,
            ]);
            prop_oneof![
                (op, inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::Binary(
                    op,
                    Box::new(l),
                    Box::new(r)
                )),
                inner
                    .clone()
                    .prop_map(|e| Expr::Unary(UnaryOp::Not, Box::new(e))),
                inner.clone().prop_map(|e| Expr::Size(Box::new(e))),
                (inner, "[a-z]{1,6}").prop_map(|(e, f)| Expr::Field(Box::new(e), f)),
            ]
        })
    }

    proptest! {
        /// Pretty-printing and re-parsing reproduces the same AST.
        #[test]
        fn print_parse_roundtrip(e in expr_strategy()) {
            let printed = e.to_string();
            let reparsed = parse(&printed)
                .unwrap_or_else(|err| panic!("printed '{printed}' failed to parse: {err}"));
            prop_assert_eq!(reparsed, e);
        }
    }
}

mod reconciliation_accounting {
    use super::*;
    use dedisys_constraints::{
        expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
    };
    use dedisys_core::{
        ClusterBuilder, ConstraintReconcileReport, DeferAll, ReconcileStrategy, ReplicaConflict,
    };
    use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
    use dedisys_types::SimTime;
    use proptest::test_runner::TestCaseError;
    use std::sync::Arc;

    fn app() -> AppDescriptor {
        AppDescriptor::new("inv").with_class(
            ClassDescriptor::new("Counter")
                .with_field("n", Value::Int(0))
                .with_field("max", Value::Int(100)),
        )
    }

    fn constraint() -> RegisteredConstraint {
        RegisteredConstraint::new(
            ConstraintMeta::new("Bounded").tradeable(SatisfactionDegree::PossiblySatisfied),
            Arc::new(ExprConstraint::parse("self.n <= self.max").unwrap()),
        )
        .context_class("Counter")
        .affects("Counter", "setN", ContextPreparation::CalledObject)
    }

    /// The §4.4 accounting identities every reconciliation run must
    /// satisfy, regardless of schedule or strategy.
    fn check_counters(
        c: &ConstraintReconcileReport,
        identities_before: usize,
        incremental: bool,
    ) -> Result<(), TestCaseError> {
        prop_assert_eq!(
            c.violations,
            c.resolved_by_rollback + c.resolved_by_handler + c.deferred,
            "violations must balance: {:?}",
            c
        );
        prop_assert_eq!(
            c.re_evaluated + c.skipped,
            identities_before,
            "every identity is re-evaluated or skipped: {:?}",
            c
        );
        prop_assert!(c.postponed >= c.skipped, "skipped ⊆ postponed: {c:?}");
        prop_assert_eq!(
            c.re_evaluated,
            c.satisfied_removed + c.violations + (c.postponed - c.skipped),
            "re-evaluations partition into outcomes: {:?}",
            c
        );
        if !incremental {
            prop_assert_eq!(c.skipped, 0, "full scan never skips");
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Across random partition/write/heal schedules — under both
        /// reconciliation strategies — the counter identities of
        /// [`ConstraintReconcileReport`] always balance (the
        /// handler-retry accounting bug made `violations` exceed the
        /// sum of its resolutions).
        #[test]
        fn reconciliation_counters_balance(
            incremental in any::<bool>(),
            schedule in prop::collection::vec(
                (0u32..3, 0usize..4, 0i64..80, any::<bool>()),
                1..8,
            ),
        ) {
            let strategy = if incremental {
                ReconcileStrategy::Incremental
            } else {
                ReconcileStrategy::FullScan
            };
            let mut cluster = ClusterBuilder::new(3, app())
                .constraint(constraint())
                .configure(|c| c.durability.reconcile_strategy = strategy)
                .build()
                .unwrap();
            let objects: Vec<ObjectId> = (0..4)
                .map(|i| ObjectId::new("Counter", format!("c{i}")))
                .collect();
            for id in &objects {
                let e = id.clone();
                cluster
                    .run_tx(NodeId(0), move |c, tx| {
                        c.create(NodeId(0), tx, EntityState::for_class(c.app(), &e)?)
                    })
                    .unwrap();
            }
            // Divergent replicas merge additively (sum of the copies),
            // so individually accepted degraded writes can combine
            // into actual violations at reconciliation time (§1.3).
            let mut merge = |conflict: &ReplicaConflict| {
                let total: i64 = conflict
                    .candidates
                    .iter()
                    .filter_map(|(_, s)| s.as_ref())
                    .filter_map(|s| s.field("n").as_int())
                    .sum();
                let mut merged = conflict
                    .candidates
                    .iter()
                    .find_map(|(_, s)| s.clone())
                    .expect("live candidate");
                merged.set_field("n", Value::Int(total), SimTime::ZERO);
                Some(merged)
            };
            for (writer, obj, value, full_heal) in schedule {
                cluster.partition(&[nodes![0], nodes![1], nodes![2]]).unwrap();
                let node = NodeId(writer);
                let id = objects[obj].clone();
                // Degraded writes may abort (e.g. negotiation refuses);
                // the accounting must hold either way.
                let _ = cluster.run_tx(node, move |c, tx| {
                    c.set_field(node, tx, &id, "n", Value::Int(value))
                });
                let identities_before = cluster.threats().identities().len();
                let summary = if full_heal {
                    cluster.heal();
                    cluster.reconcile(&mut merge, &mut DeferAll)
                } else {
                    // Partial re-unification: {0,1} merge, {2} away.
                    cluster.partition(&[nodes![0, 1], nodes![2]]).unwrap();
                    cluster.reconcile_partial(NodeId(0), &mut merge, &mut DeferAll)
                };
                check_counters(&summary.constraints, identities_before, incremental)?;
            }
            // Drain: after a full heal the two strategies converge —
            // nothing is skipped because everything is checkable.
            cluster.heal();
            let identities_before = cluster.threats().identities().len();
            let summary = cluster.reconcile(&mut merge, &mut DeferAll);
            check_counters(&summary.constraints, identities_before, incremental)?;
            prop_assert_eq!(summary.constraints.skipped, 0);
        }
    }
}

#[test]
fn degree_lattice_is_total_order() {
    for (i, a) in SatisfactionDegree::ALL.iter().enumerate() {
        for (j, b) in SatisfactionDegree::ALL.iter().enumerate() {
            assert_eq!(a < b, i < j);
        }
    }
}
