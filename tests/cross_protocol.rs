//! Cross-crate integration: behaviour of the four replication
//! protocols under partitions, and their interaction with constraint
//! consistency management.

use dedisys_core::nodes;
use dedisys_core::{ClusterBuilder, DeferAll, HighestVersionWins, ProtocolKind};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{Error, NodeId, ObjectId, SystemMode, Value};

fn app() -> AppDescriptor {
    AppDescriptor::new("kv").with_class(ClassDescriptor::new("Item").with_field("v", Value::Int(0)))
}

fn cluster_with(protocol: ProtocolKind, nodes: u32) -> dedisys_core::Cluster {
    ClusterBuilder::new(nodes, app())
        .protocol(protocol)
        .build()
        .unwrap()
}

fn seed_item(cluster: &mut dedisys_core::Cluster, key: &str) -> ObjectId {
    let id = ObjectId::new("Item", key);
    let node = NodeId(0);
    let e = id.clone();
    cluster
        .run_tx(node, move |c, tx| {
            c.create(node, tx, EntityState::for_class(c.app(), &e)?)
        })
        .unwrap();
    id
}

fn write(
    cluster: &mut dedisys_core::Cluster,
    node: NodeId,
    id: &ObjectId,
    v: i64,
) -> Result<(), Error> {
    let id = id.clone();
    cluster.run_tx(node, move |c, tx| {
        c.set_field(node, tx, &id, "v", Value::Int(v))
    })
}

#[test]
fn primary_backup_blocks_writes_away_from_primary() {
    let mut cluster = cluster_with(ProtocolKind::PrimaryBackup, 3);
    let id = seed_item(&mut cluster, "a"); // primary = creator = n0
    cluster.partition(&[nodes![0], nodes![1, 2]]).unwrap();
    // Primary's side writes; the other side is blocked.
    assert!(write(&mut cluster, NodeId(0), &id, 1).is_ok());
    assert!(matches!(
        write(&mut cluster, NodeId(1), &id, 2),
        Err(Error::ModeRestriction(_))
    ));
    // Reads stay possible everywhere (local replicas).
    let got = cluster
        .run_tx(NodeId(1), |c, tx| c.get_field(NodeId(1), tx, &id, "v"))
        .unwrap();
    assert_eq!(got, Value::Int(0), "stale but available");
}

#[test]
fn primary_partition_allows_only_majority_side() {
    let mut cluster = cluster_with(ProtocolKind::PrimaryPartition, 3);
    let id = seed_item(&mut cluster, "a");
    cluster.partition(&[nodes![0], nodes![1, 2]]).unwrap();
    assert!(matches!(
        write(&mut cluster, NodeId(0), &id, 1),
        Err(Error::ModeRestriction(_))
    ));
    assert!(write(&mut cluster, NodeId(1), &id, 2).is_ok());
    // No write-write conflicts possible: reconciliation has only
    // missed updates.
    cluster.heal();
    let summary = cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    assert!(summary.replica.conflicts.is_empty());
    assert_eq!(
        cluster.entity_on(NodeId(0), &id).unwrap().field("v"),
        &Value::Int(2)
    );
}

#[test]
fn p4_writes_everywhere_and_reconciles_conflicts() {
    let mut cluster = cluster_with(ProtocolKind::PrimaryPerPartition, 3);
    let id = seed_item(&mut cluster, "a");
    cluster.partition(&[nodes![0], nodes![1, 2]]).unwrap();
    assert!(write(&mut cluster, NodeId(0), &id, 1).is_ok());
    assert!(write(&mut cluster, NodeId(1), &id, 2).is_ok());
    assert!(write(&mut cluster, NodeId(2), &id, 3).is_ok());
    // Within a partition the temporary primary propagates to reachable
    // backups: n2 sees n1/n2-side value.
    assert_eq!(
        cluster.entity_on(NodeId(2), &id).unwrap().field("v"),
        &Value::Int(3)
    );
    cluster.heal();
    let summary = cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    assert_eq!(summary.replica.conflicts.len(), 1);
    // Highest version wins: side {1,2} wrote twice (v=2 then v=3).
    for n in 0..3 {
        assert_eq!(
            cluster.entity_on(NodeId(n), &id).unwrap().field("v"),
            &Value::Int(3)
        );
    }
}

#[test]
fn adaptive_voting_adapts_quorums_in_degraded_mode() {
    let mut cluster = cluster_with(ProtocolKind::AdaptiveVoting, 3);
    let id = seed_item(&mut cluster, "a");
    // Healthy: majority quorum available, writes fine.
    assert!(write(&mut cluster, NodeId(1), &id, 1).is_ok());
    cluster.partition(&[nodes![0], nodes![1, 2]]).unwrap();
    // Degraded: both partitions may write (adapted quorums).
    assert!(write(&mut cluster, NodeId(0), &id, 2).is_ok());
    assert!(write(&mut cluster, NodeId(1), &id, 3).is_ok());
    cluster.heal();
    let summary = cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    assert_eq!(summary.replica.conflicts.len(), 1);
}

#[test]
fn mode_transitions_follow_figure_1_4() {
    let mut cluster = cluster_with(ProtocolKind::PrimaryPerPartition, 2);
    let id = seed_item(&mut cluster, "a");
    assert_eq!(cluster.mode(), SystemMode::Healthy);
    cluster.partition(&[nodes![0], nodes![1]]).unwrap();
    assert_eq!(cluster.mode(), SystemMode::Degraded);
    write(&mut cluster, NodeId(0), &id, 1).unwrap();
    cluster.heal();
    assert_eq!(cluster.mode(), SystemMode::Reconciliation);
    cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    assert_eq!(cluster.mode(), SystemMode::Healthy);
}

#[test]
fn repeated_partition_cycles_stay_consistent() {
    let mut cluster = cluster_with(ProtocolKind::PrimaryPerPartition, 4);
    let id = seed_item(&mut cluster, "a");
    let mut expected = 0;
    for round in 0..5 {
        cluster.partition(&[nodes![0, 1], nodes![2, 3]]).unwrap();
        expected = round * 10 + 1;
        write(&mut cluster, NodeId(0), &id, expected).unwrap();
        write(&mut cluster, NodeId(2), &id, round * 10 + 2).unwrap();
        cluster.heal();
        cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
        // Same number of degraded writes per side → deterministic
        // winner; all replicas agree afterwards.
        let reference = cluster
            .entity_on(NodeId(0), &id)
            .unwrap()
            .field("v")
            .clone();
        for n in 1..4 {
            assert_eq!(
                cluster.entity_on(NodeId(n), &id).unwrap().field("v"),
                &reference,
                "round {round}, node {n}"
            );
        }
    }
    let _ = expected;
    assert!(cluster.threats().is_empty());
}

#[test]
fn no_dedisys_baseline_has_no_replication_or_ccm() {
    let mut cluster = ClusterBuilder::new(1, app())
        .without_dedisys()
        .build()
        .unwrap();
    let id = seed_item(&mut cluster, "a");
    write(&mut cluster, NodeId(0), &id, 5).unwrap();
    assert_eq!(cluster.stats().replication.propagations, 0);
    assert_eq!(cluster.stats().ccm.validations, 0);
}

#[test]
fn virtual_time_advances_deterministically() {
    let run = || {
        let mut cluster = cluster_with(ProtocolKind::PrimaryPerPartition, 3);
        let id = seed_item(&mut cluster, "a");
        for i in 0..10 {
            write(&mut cluster, NodeId(0), &id, i).unwrap();
        }
        cluster.now()
    };
    let t1 = run();
    let t2 = run();
    assert_eq!(t1, t2, "same workload, same virtual time");
    assert!(t1.as_nanos() > 0);
}
