//! §3.3 partial re-unification: when only some partitions merge,
//! reconciliation proceeds for the objects it can reach and postpones
//! the rest until further partitions re-unify.

use dedisys_constraints::{
    expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
};
use dedisys_core::{ClusterBuilder, DeferAll, HighestVersionWins};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{NodeId, ObjectId, SatisfactionDegree, SystemMode, Value};
use std::sync::Arc;

fn app() -> AppDescriptor {
    AppDescriptor::new("inv").with_class(
        ClassDescriptor::new("Counter")
            .with_field("n", Value::Int(0))
            .with_field("max", Value::Int(100)),
    )
}

fn constraint() -> RegisteredConstraint {
    RegisteredConstraint::new(
        ConstraintMeta::new("Bounded").tradeable(SatisfactionDegree::PossiblySatisfied),
        Arc::new(ExprConstraint::parse("self.n <= self.max").unwrap()),
    )
    .context_class("Counter")
    .affects("Counter", "setN", ContextPreparation::CalledObject)
}

#[test]
fn partial_merge_reconciles_reachable_and_postpones_the_rest() {
    let mut cluster = ClusterBuilder::new(4, app())
        .constraint(constraint())
        .build()
        .unwrap();
    let id = ObjectId::new("Counter", "c1");
    let e = id.clone();
    cluster
        .run_tx(NodeId(0), move |c, tx| {
            c.create(NodeId(0), tx, EntityState::for_class(c.app(), &e)?)
        })
        .unwrap();

    // Three-way split; every partition writes.
    cluster.partition_raw(&[&[0], &[1], &[2, 3]]);
    for (node, value) in [(0u32, 1i64), (1, 2), (2, 3)] {
        let id = id.clone();
        cluster
            .run_tx(NodeId(node), move |c, tx| {
                c.set_field(NodeId(node), tx, &id, "n", Value::Int(value))
            })
            .unwrap();
    }
    assert_eq!(cluster.threats().identities().len(), 1);

    // Partitions {0} and {1} merge; {2,3} stays away.
    cluster.partition_raw(&[&[0, 1], &[2, 3]]);
    let summary = cluster.reconcile_partial(NodeId(0), &mut HighestVersionWins, &mut DeferAll);

    // The {0}/{1} conflict was resolved within the merged partition…
    assert_eq!(summary.replica.conflicts.len(), 1);
    assert_eq!(
        cluster.entity_on(NodeId(0), &id).unwrap().field("n"),
        cluster.entity_on(NodeId(1), &id).unwrap().field("n"),
    );
    // …but the constraint threat is postponed: the {2,3} side is still
    // unreachable and possibly diverging.
    assert_eq!(summary.constraints.postponed, 1);
    assert_eq!(cluster.threats().identities().len(), 1, "threat retained");
    assert_eq!(cluster.mode(), SystemMode::Degraded);
    // {2,3} never saw the merge.
    assert_eq!(
        cluster.entity_on(NodeId(2), &id).unwrap().field("n"),
        &Value::Int(3)
    );

    // Full heal: the remaining divergence reconciles and the threat is
    // re-evaluated for good.
    cluster.heal();
    let summary = cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    assert!(!summary.replica.conflicts.is_empty());
    assert_eq!(summary.constraints.postponed, 0);
    assert!(cluster.threats().is_empty());
    assert_eq!(cluster.mode(), SystemMode::Healthy);
    let reference = cluster
        .entity_on(NodeId(0), &id)
        .unwrap()
        .field("n")
        .clone();
    for n in 1..4 {
        assert_eq!(
            cluster.entity_on(NodeId(n), &id).unwrap().field("n"),
            &reference
        );
    }
}

#[test]
fn partial_merge_with_all_writers_reachable_resolves_threats() {
    let mut cluster = ClusterBuilder::new(3, app())
        .constraint(constraint())
        .build()
        .unwrap();
    let id = ObjectId::new("Counter", "c1");
    let e = id.clone();
    cluster
        .run_tx(NodeId(0), move |c, tx| {
            c.create(NodeId(0), tx, EntityState::for_class(c.app(), &e)?)
        })
        .unwrap();
    cluster.partition_raw(&[&[0], &[1], &[2]]);
    // Only partitions {0} and {1} write.
    for (node, value) in [(0u32, 5i64), (1, 6)] {
        let id = id.clone();
        cluster
            .run_tx(NodeId(node), move |c, tx| {
                c.set_field(NodeId(node), tx, &id, "n", Value::Int(value))
            })
            .unwrap();
    }
    // {0} and {1} merge — every writer partition is now reachable, but
    // node 2 still holds a (stale, never-written) replica, so the
    // object remains tracked and the threat stays (P4: possibly stale
    // while any partition remains).
    cluster.partition_raw(&[&[0, 1], &[2]]);
    let summary = cluster.reconcile_partial(NodeId(0), &mut HighestVersionWins, &mut DeferAll);
    assert_eq!(
        summary.replica.conflicts.len(),
        1,
        "writer conflict resolved"
    );
    assert_eq!(
        summary.constraints.postponed, 1,
        "object still stale: threat kept"
    );
    assert_eq!(
        cluster.entity_on(NodeId(1), &id).unwrap().field("n"),
        &Value::Int(6),
        "merged partition consistent (highest version wins)"
    );

    cluster.heal();
    cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    assert!(cluster.threats().is_empty());
    assert_eq!(
        cluster.entity_on(NodeId(2), &id).unwrap().field("n"),
        &Value::Int(6)
    );
}
