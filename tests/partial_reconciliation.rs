//! §3.3 partial re-unification: when only some partitions merge,
//! reconciliation proceeds for the objects it can reach and postpones
//! the rest until further partitions re-unify.

use dedisys_constraints::{
    expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
    ValidationContext,
};
use dedisys_core::nodes;
use dedisys_core::{ClusterBuilder, DeferAll, HighestVersionWins, ReconcileInstructions};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{NodeId, ObjectId, SatisfactionDegree, SystemMode, Value};
use std::sync::Arc;

fn app() -> AppDescriptor {
    AppDescriptor::new("inv").with_class(
        ClassDescriptor::new("Counter")
            .with_field("n", Value::Int(0))
            .with_field("max", Value::Int(100)),
    )
}

fn constraint() -> RegisteredConstraint {
    RegisteredConstraint::new(
        ConstraintMeta::new("Bounded").tradeable(SatisfactionDegree::PossiblySatisfied),
        Arc::new(ExprConstraint::parse("self.n <= self.max").unwrap()),
    )
    .context_class("Counter")
    .affects("Counter", "setN", ContextPreparation::CalledObject)
}

#[test]
fn partial_merge_reconciles_reachable_and_postpones_the_rest() {
    let mut cluster = ClusterBuilder::new(4, app())
        .constraint(constraint())
        .build()
        .unwrap();
    let id = ObjectId::new("Counter", "c1");
    let e = id.clone();
    cluster
        .run_tx(NodeId(0), move |c, tx| {
            c.create(NodeId(0), tx, EntityState::for_class(c.app(), &e)?)
        })
        .unwrap();

    // Three-way split; every partition writes.
    cluster
        .partition(&[nodes![0], nodes![1], nodes![2, 3]])
        .unwrap();
    for (node, value) in [(0u32, 1i64), (1, 2), (2, 3)] {
        let id = id.clone();
        cluster
            .run_tx(NodeId(node), move |c, tx| {
                c.set_field(NodeId(node), tx, &id, "n", Value::Int(value))
            })
            .unwrap();
    }
    assert_eq!(cluster.threats().identities().len(), 1);

    // Partitions {0} and {1} merge; {2,3} stays away.
    cluster.partition(&[nodes![0, 1], nodes![2, 3]]).unwrap();
    let summary = cluster.reconcile_partial(NodeId(0), &mut HighestVersionWins, &mut DeferAll);

    // The {0}/{1} conflict was resolved within the merged partition…
    assert_eq!(summary.replica.conflicts.len(), 1);
    assert_eq!(
        cluster.entity_on(NodeId(0), &id).unwrap().field("n"),
        cluster.entity_on(NodeId(1), &id).unwrap().field("n"),
    );
    // …but the constraint threat is postponed: the {2,3} side is still
    // unreachable and possibly diverging.
    assert_eq!(summary.constraints.postponed, 1);
    assert_eq!(cluster.threats().identities().len(), 1, "threat retained");
    assert_eq!(cluster.mode(), SystemMode::Degraded);
    // {2,3} never saw the merge.
    assert_eq!(
        cluster.entity_on(NodeId(2), &id).unwrap().field("n"),
        &Value::Int(3)
    );

    // Full heal: the remaining divergence reconciles and the threat is
    // re-evaluated for good.
    cluster.heal();
    let summary = cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    assert!(!summary.replica.conflicts.is_empty());
    assert_eq!(summary.constraints.postponed, 0);
    assert!(cluster.threats().is_empty());
    assert_eq!(cluster.mode(), SystemMode::Healthy);
    let reference = cluster
        .entity_on(NodeId(0), &id)
        .unwrap()
        .field("n")
        .clone();
    for n in 1..4 {
        assert_eq!(
            cluster.entity_on(NodeId(n), &id).unwrap().field("n"),
            &reference
        );
    }
}

#[test]
fn partial_merge_with_all_writers_reachable_resolves_threats() {
    let mut cluster = ClusterBuilder::new(3, app())
        .constraint(constraint())
        .build()
        .unwrap();
    let id = ObjectId::new("Counter", "c1");
    let e = id.clone();
    cluster
        .run_tx(NodeId(0), move |c, tx| {
            c.create(NodeId(0), tx, EntityState::for_class(c.app(), &e)?)
        })
        .unwrap();
    cluster
        .partition(&[nodes![0], nodes![1], nodes![2]])
        .unwrap();
    // Only partitions {0} and {1} write.
    for (node, value) in [(0u32, 5i64), (1, 6)] {
        let id = id.clone();
        cluster
            .run_tx(NodeId(node), move |c, tx| {
                c.set_field(NodeId(node), tx, &id, "n", Value::Int(value))
            })
            .unwrap();
    }
    // {0} and {1} merge — every writer partition is now reachable, but
    // node 2 still holds a (stale, never-written) replica, so the
    // object remains tracked and the threat stays (P4: possibly stale
    // while any partition remains).
    cluster.partition(&[nodes![0, 1], nodes![2]]).unwrap();
    let summary = cluster.reconcile_partial(NodeId(0), &mut HighestVersionWins, &mut DeferAll);
    assert_eq!(
        summary.replica.conflicts.len(),
        1,
        "writer conflict resolved"
    );
    assert_eq!(
        summary.constraints.postponed, 1,
        "object still stale: threat kept"
    );
    assert_eq!(
        cluster.entity_on(NodeId(1), &id).unwrap().field("n"),
        &Value::Int(6),
        "merged partition consistent (highest version wins)"
    );

    cluster.heal();
    cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    assert!(cluster.threats().is_empty());
    assert_eq!(
        cluster.entity_on(NodeId(2), &id).unwrap().field("n"),
        &Value::Int(6)
    );
}

/// Regression — rollback scoping during partial reconciliation
/// observed from a node other than `NodeId(0)`.
///
/// `try_rollback` used to read the restore-on-failure state through a
/// hardcoded `NodeId(0)`. For objects bound to replicas `{2, 3}` that
/// read yields nothing, so a failed rollback search over one affected
/// object silently left the last *rejected* candidate installed
/// instead of restoring the merged state. The search must be scoped to
/// the observer's partition.
#[test]
fn rollback_during_partial_merge_scopes_to_the_observer() {
    let a_id = ObjectId::new("Counter", "a1");
    let c_id = ObjectId::new("Counter", "c1");
    // SumBounded: a1.n + c1.n ≤ 160 — evaluated on every Counter write.
    let (a, c) = (a_id.clone(), c_id.clone());
    let sum_bounded = RegisteredConstraint::new(
        ConstraintMeta::new("SumBounded").tradeable(SatisfactionDegree::PossiblySatisfied),
        Arc::new(move |ctx: &mut ValidationContext<'_>| {
            let left = ctx.field(&a, "n")?.as_int().unwrap_or(0);
            let right = ctx.field(&c, "n")?.as_int().unwrap_or(0);
            Ok(left + right <= 160)
        }),
    )
    .context_class("Counter")
    .affects("Counter", "setN", ContextPreparation::CalledObject);

    let mut cluster = ClusterBuilder::new(4, app())
        .constraint(sum_bounded)
        .default_instructions(ReconcileInstructions {
            allow_rollback: true,
            notify_on_replica_conflict: false,
        })
        .build()
        .unwrap();
    // Both objects live only on nodes {2, 3}, primary 2 — NodeId(0)
    // never holds a replica.
    let owner = NodeId(2);
    for id in [&a_id, &c_id] {
        let e = id.clone();
        cluster
            .run_tx(owner, move |cl, tx| {
                let entity = EntityState::for_class(cl.app(), &e)?;
                cl.create_bound(owner, tx, entity, vec![NodeId(2), NodeId(3)], owner)
            })
            .unwrap();
    }
    for (id, value) in [(&a_id, 20i64), (&c_id, 60)] {
        let id = id.clone();
        cluster
            .run_tx(owner, move |cl, tx| {
                cl.set_field(owner, tx, &id, "n", Value::Int(value))
            })
            .unwrap();
    }

    // Three-way split: {2} and {3} write independently.
    cluster
        .partition(&[nodes![0, 1], nodes![2], nodes![3]])
        .unwrap();
    for (node, id, value) in [
        (NodeId(2), &a_id, 30i64), // a1 history in {2}: 30, then 50
        (NodeId(2), &a_id, 50),
        (NodeId(2), &c_id, 70), // c1 diverges: 70 in {2} …
        (NodeId(3), &c_id, 70), // … and 70 in {3}
    ] {
        let id = id.clone();
        cluster
            .run_tx(node, move |cl, tx| {
                cl.set_field(node, tx, &id, "n", Value::Int(value))
            })
            .unwrap();
    }

    // {2, 3} re-unify; {0, 1} stays away. Node 2 observes. The additive
    // merge drives c1 to 140, so a1.n + c1.n = 190 > 160 — an actual
    // violation whose rollback search runs entirely inside {2, 3}.
    cluster.partition(&[nodes![0, 1], nodes![2, 3]]).unwrap();
    let mut additive = |conflict: &dedisys_core::ReplicaConflict| {
        let total: i64 = conflict
            .candidates
            .iter()
            .filter_map(|(_, s)| s.as_ref())
            .filter_map(|s| s.field("n").as_int())
            .sum();
        let mut merged = conflict.candidates[0].1.clone().unwrap();
        merged.set_field("n", Value::Int(total), dedisys_types::SimTime::ZERO);
        Some(merged)
    };
    let summary = cluster.reconcile_partial(owner, &mut additive, &mut DeferAll);

    assert_eq!(summary.replica.conflicts.len(), 1, "c1 diverged");
    assert_eq!(summary.constraints.violations, 1);
    assert_eq!(summary.constraints.resolved_by_rollback, 1);
    assert_eq!(summary.constraints.deferred, 0);
    // No a1 history state satisfies the constraint against c1 = 140,
    // so a1 must be *restored* to its merged state (50) before the c1
    // candidate (70) resolves the violation. The old NodeId(0) read
    // found no state and left a1 at the rejected candidate 30.
    for node in [NodeId(2), NodeId(3)] {
        assert_eq!(
            cluster.entity_on(node, &a_id).unwrap().field("n"),
            &Value::Int(50),
            "a1 restored on {node:?}"
        );
        assert_eq!(
            cluster.entity_on(node, &c_id).unwrap().field("n"),
            &Value::Int(70),
            "c1 rolled back on {node:?}"
        );
    }
    // The away partition never held the bound objects.
    assert!(cluster.entity_on(NodeId(0), &a_id).is_none());
    assert!(cluster.threats().is_empty(), "both threats resolved");
}
