//! The sharded federation layer end to end: consistent-hash routing
//! over live shards, the three degraded-shard routing policies,
//! cross-shard 2PC (commit, abort, participant refusal, federation
//! coordinator crash + presumed abort) and explicit rebalancing over
//! the WAL/state-transfer path.

use dedisys_core::{nodes, ModeGate, RingRecorder};
use dedisys_federation::{
    FederatedCluster, FederationMode, RebalancePlan, RoutingPolicy, ShardId, ShardMap,
};
use dedisys_object::{AppDescriptor, ClassDescriptor};
use dedisys_types::{Error, ObjectId, SimDuration, SystemMode, Value};

fn app() -> AppDescriptor {
    AppDescriptor::new("federation")
        .with_class(ClassDescriptor::new("Item").with_field("v", Value::Int(0)))
}

/// The first `Item` id with the given hint prefix that the map routes
/// to `shard` — deterministic per seed, so tests can aim writes at a
/// chosen shard.
fn id_on(map: &ShardMap, shard: ShardId, hint: &str) -> ObjectId {
    (0..10_000)
        .map(|i| ObjectId::new("Item", format!("{hint}{i}")))
        .find(|id| map.shard_of(id) == shard)
        .expect("some id routes to every shard")
}

fn federation(shards: u32, policy: RoutingPolicy) -> FederatedCluster {
    FederatedCluster::builder(shards, 3, app())
        .seed(7)
        .policy(policy)
        .build()
        .expect("build federation")
}

fn write(fed: &mut FederatedCluster, id: &ObjectId, v: i64) -> dedisys_types::Result<()> {
    fed.run_routed(id, |mut session| {
        session.set_field(id, "v", Value::Int(v))?;
        session.commit()
    })
}

fn read(fed: &FederatedCluster, shard: ShardId, id: &ObjectId) -> Option<Value> {
    let node = fed.coordinator_node(shard)?;
    Some(fed.shard(shard).entity_on(node, id)?.field("v").clone())
}

// ---------------------------------------------------------------------
// Quick start: routing + single-shard writes
// ---------------------------------------------------------------------

#[test]
fn three_shard_quick_start_routes_creates_and_writes() {
    let mut fed = federation(3, RoutingPolicy::RouteAnyway);
    assert_eq!(fed.shard_count(), 3);
    assert_eq!(fed.mode(), FederationMode::Healthy);

    // Create enough objects that every shard owns at least one, then
    // write through the router and read back on the owning shard.
    let mut owners = std::collections::BTreeSet::new();
    for i in 0..12 {
        let id = ObjectId::new("Item", format!("qs{i}"));
        let shard = fed.create(&id).expect("create");
        assert_eq!(shard, fed.map().shard_of(&id), "placement follows the map");
        owners.insert(shard);
        write(&mut fed, &id, i).expect("routed write");
        assert_eq!(read(&fed, shard, &id), Some(Value::Int(i)));
    }
    assert_eq!(owners.len(), 3, "12 keys cover all 3 shards at seed 7");
    assert!(fed.stats().routed >= 12);

    // Routing is deterministic: an identically-seeded federation agrees
    // on every placement.
    let twin = federation(3, RoutingPolicy::RouteAnyway);
    for i in 0..12 {
        let id = ObjectId::new("Item", format!("qs{i}"));
        assert_eq!(fed.map().shard_of(&id), twin.map().shard_of(&id));
    }
}

// ---------------------------------------------------------------------
// Routing policies
// ---------------------------------------------------------------------

#[test]
fn reject_degraded_refuses_work_for_degraded_shards_only() {
    let mut fed = federation(3, RoutingPolicy::RejectDegraded);
    // The policy is pushed into every shard plane's admission gate.
    for s in 0..3 {
        assert_eq!(
            fed.plane(ShardId(s)).mode_gate(),
            ModeGate::RejectUnlessHealthy
        );
    }
    let degraded_id = id_on(fed.map(), ShardId(0), "rd");
    let healthy_id = id_on(fed.map(), ShardId(1), "rd");
    fed.create(&degraded_id).unwrap();
    fed.create(&healthy_id).unwrap();

    fed.shard_mut(ShardId(0))
        .partition(&[nodes![0, 1], nodes![2]])
        .expect("split shard 0");
    assert_eq!(fed.shard(ShardId(0)).mode(), SystemMode::Degraded);
    assert_eq!(
        fed.mode(),
        FederationMode::PartiallyDegraded {
            degraded: 1,
            total: 3
        }
    );

    let refused = write(&mut fed, &degraded_id, 1);
    assert!(
        matches!(refused, Err(Error::ModeRestriction(_))),
        "{refused:?}"
    );
    assert!(fed.stats().rejected_degraded >= 1);
    // Healthy shards keep serving.
    write(&mut fed, &healthy_id, 2).expect("healthy shard serves");
    assert_eq!(read(&fed, ShardId(1), &healthy_id), Some(Value::Int(2)));
}

#[test]
fn route_anyway_serves_degraded_shards_with_threatened_consistency() {
    let mut fed = federation(3, RoutingPolicy::RouteAnyway);
    let id = id_on(fed.map(), ShardId(0), "ra");
    fed.create(&id).unwrap();
    fed.shard_mut(ShardId(0))
        .partition(&[nodes![0, 1], nodes![2]])
        .expect("split shard 0");
    assert_eq!(fed.shard(ShardId(0)).mode(), SystemMode::Degraded);
    write(&mut fed, &id, 9).expect("availability-first routing serves");
    assert_eq!(read(&fed, ShardId(0), &id), Some(Value::Int(9)));
}

#[test]
fn sticky_policy_follows_migrations_not_stale_pins() {
    let mut fed = federation(3, RoutingPolicy::Sticky);
    let id = id_on(fed.map(), ShardId(2), "st");
    fed.create(&id).unwrap();
    write(&mut fed, &id, 1).expect("pin on first route");

    // Shrinking to 2 shards migrates everything S2 owned; the pin must
    // follow the migration, not the original placement.
    let plan = fed.plan_rebalance_to(2).expect("plan");
    assert!(plan.steps.iter().any(|s| s.object == id));
    fed.rebalance(plan).expect("rebalance");
    let new_owner = fed.map().shard_of(&id);
    assert_ne!(new_owner, ShardId(2));
    write(&mut fed, &id, 5).expect("write lands on the new owner");
    assert_eq!(read(&fed, new_owner, &id), Some(Value::Int(5)));
    assert_eq!(read(&fed, ShardId(2), &id), None, "evicted from the source");
}

// ---------------------------------------------------------------------
// Cross-shard 2PC
// ---------------------------------------------------------------------

#[test]
fn xshard_commit_applies_atomically_on_every_participant() {
    let mut fed = federation(3, RoutingPolicy::RouteAnyway);
    let ring = RingRecorder::new(512);
    fed.telemetry().attach(Box::new(ring.clone()));
    let a = id_on(fed.map(), ShardId(0), "xc");
    let b = id_on(fed.map(), ShardId(1), "xc");
    fed.create(&a).unwrap();
    fed.create(&b).unwrap();

    let xtx = fed.xshard_begin();
    assert_eq!(
        fed.xshard_set_field(xtx, &a, "v", Value::Int(10)),
        Ok(ShardId(0))
    );
    assert_eq!(
        fed.xshard_set_field(xtx, &b, "v", Value::Int(20)),
        Ok(ShardId(1))
    );
    fed.xshard_prepare(xtx).expect("prepare everywhere");
    assert_eq!(fed.stats().xshard_prepared, 1);
    fed.xshard_commit(xtx).expect("commit everywhere");

    assert_eq!(read(&fed, ShardId(0), &a), Some(Value::Int(10)));
    assert_eq!(read(&fed, ShardId(1), &b), Some(Value::Int(20)));
    assert_eq!(fed.open_xshard_count(), 0);
    assert!(fed.shard(ShardId(0)).held_locks().is_empty());
    assert!(fed.shard(ShardId(1)).held_locks().is_empty());
    let outcome = &fed.xshard_outcomes()[&xtx];
    assert!(outcome.committed);
    assert!(!outcome.presumed_abort);
    assert_eq!(outcome.participants.len(), 2);

    let prepared = ring.records_of_kind("xshard_prepared");
    let resolved = ring.records_of_kind("xshard_resolved");
    assert_eq!(prepared.len(), 1);
    assert_eq!(resolved.len(), 1);
    assert!(prepared[0].seq < resolved[0].seq);
}

#[test]
fn xshard_abort_rolls_back_every_participant() {
    let mut fed = federation(3, RoutingPolicy::RouteAnyway);
    let a = id_on(fed.map(), ShardId(0), "xa");
    let b = id_on(fed.map(), ShardId(2), "xa");
    fed.create(&a).unwrap();
    fed.create(&b).unwrap();

    let xtx = fed.xshard_begin();
    fed.xshard_set_field(xtx, &a, "v", Value::Int(1)).unwrap();
    fed.xshard_set_field(xtx, &b, "v", Value::Int(2)).unwrap();
    fed.xshard_abort(xtx).expect("abort");

    assert_eq!(read(&fed, ShardId(0), &a), Some(Value::Int(0)));
    assert_eq!(read(&fed, ShardId(2), &b), Some(Value::Int(0)));
    assert!(fed.shard(ShardId(0)).held_locks().is_empty());
    assert!(fed.shard(ShardId(2)).held_locks().is_empty());
    assert!(!fed.xshard_outcomes()[&xtx].committed);
    assert_eq!(fed.stats().xshard_aborted, 1);
}

#[test]
fn participant_refusal_during_prepare_aborts_the_whole_transaction() {
    let mut fed = federation(3, RoutingPolicy::RouteAnyway);
    let a = id_on(fed.map(), ShardId(0), "xr");
    let b = id_on(fed.map(), ShardId(1), "xr");
    fed.create(&a).unwrap();
    fed.create(&b).unwrap();

    let xtx = fed.xshard_begin();
    fed.xshard_set_field(xtx, &a, "v", Value::Int(1)).unwrap();
    let staged_on = fed.xshard_set_field(xtx, &b, "v", Value::Int(2)).unwrap();
    // Crash the node carrying shard 1's participant transaction: its
    // prepare vote becomes a refusal, which must unwind shard 0 too.
    let node = fed.coordinator_node(staged_on).unwrap();
    fed.shard_mut(staged_on).crash(node).unwrap();
    assert!(fed.xshard_prepare(xtx).is_err(), "one no vote aborts");

    assert_eq!(read(&fed, ShardId(0), &a), Some(Value::Int(0)));
    assert!(fed.shard(ShardId(0)).held_locks().is_empty());
    assert_eq!(fed.open_xshard_count(), 0);
    assert!(!fed.xshard_outcomes()[&xtx].committed);
}

#[test]
fn coordinator_crash_presumes_abort_after_the_deadline() {
    let mut fed = FederatedCluster::builder(3, 3, app())
        .seed(7)
        .xshard_timeout(SimDuration::from_millis(50))
        .build()
        .unwrap();
    let ring = RingRecorder::new(512);
    fed.telemetry().attach(Box::new(ring.clone()));
    let a = id_on(fed.map(), ShardId(0), "cc");
    let b = id_on(fed.map(), ShardId(1), "cc");
    fed.create(&a).unwrap();
    fed.create(&b).unwrap();

    let xtx = fed.xshard_begin();
    fed.xshard_set_field(xtx, &a, "v", Value::Int(3)).unwrap();
    fed.xshard_set_field(xtx, &b, "v", Value::Int(4)).unwrap();
    fed.xshard_prepare(xtx).unwrap();
    fed.crash_coordinator(xtx)
        .expect("prepared tx goes in doubt");
    assert_eq!(fed.xshard_in_doubt_count(), 1);
    // Participants stay prepared — locks held, outcome unknowable.
    assert_eq!(fed.shard(ShardId(0)).held_locks().len(), 1);

    // Before the deadline nothing resolves…
    assert_eq!(fed.resolve_xshard_in_doubt(), 0);
    // …after it, presumed abort rolls back every participant.
    fed.clock().advance(SimDuration::from_millis(50));
    assert_eq!(fed.resolve_xshard_in_doubt(), 1);
    assert_eq!(fed.xshard_in_doubt_count(), 0);
    assert_eq!(fed.open_xshard_count(), 0);
    assert_eq!(read(&fed, ShardId(0), &a), Some(Value::Int(0)));
    assert_eq!(read(&fed, ShardId(1), &b), Some(Value::Int(0)));
    assert!(fed.shard(ShardId(0)).held_locks().is_empty());
    assert!(fed.shard(ShardId(1)).held_locks().is_empty());
    let outcome = &fed.xshard_outcomes()[&xtx];
    assert!(!outcome.committed);
    assert!(outcome.presumed_abort);
    assert_eq!(fed.stats().xshard_presumed_aborted, 1);
    assert_eq!(ring.records_of_kind("xshard_resolved").len(), 1);
}

// ---------------------------------------------------------------------
// Rebalancing
// ---------------------------------------------------------------------

#[test]
fn rebalance_moves_committed_state_over_the_wal_path() {
    let mut fed = federation(4, RoutingPolicy::RouteAnyway);
    let ring = RingRecorder::new(1024);
    fed.telemetry().attach(Box::new(ring.clone()));
    let mut values = std::collections::BTreeMap::new();
    for i in 0..20 {
        let id = ObjectId::new("Item", format!("rb{i}"));
        fed.create(&id).unwrap();
        write(&mut fed, &id, 100 + i).unwrap();
        values.insert(id, 100 + i);
    }

    let plan = fed.plan_rebalance_to(3).expect("shrink plan");
    assert!(!plan.steps.is_empty(), "S3's keys must move");
    assert!(plan.steps.iter().all(|s| s.from == ShardId(3)));
    let expected_moves = plan.steps.len() as u64;
    let report = fed.rebalance(plan).expect("rebalance");
    assert_eq!(report.migrated, expected_moves);
    assert!(report.deferred.is_empty());
    assert_eq!(fed.map().shards(), 3);
    assert_eq!(fed.stats().migrated, expected_moves);
    assert_eq!(
        ring.records_of_kind("shard_migrated").len(),
        expected_moves as usize
    );

    // Every object survives with its committed value, at its new owner.
    for (id, v) in &values {
        let owner = fed.map().shard_of(id);
        assert!(owner.0 < 3);
        assert_eq!(read(&fed, owner, id), Some(Value::Int(*v)), "{id}");
        write(&mut fed, id, v + 1).expect("writable after migration");
    }
}

#[test]
fn rebalance_defers_steps_whose_shards_are_faulted() {
    let mut fed = federation(3, RoutingPolicy::RouteAnyway);
    let id = id_on(fed.map(), ShardId(2), "df");
    fed.create(&id).unwrap();
    write(&mut fed, &id, 7).unwrap();

    // A transaction holding the object's lock on the source shard
    // defers (not fails) the step: migrating pessimistically-locked
    // state would tear an open transaction in half.
    let node = fed.coordinator_node(ShardId(2)).unwrap();
    let holder = {
        let mut session = fed.shard_mut(ShardId(2)).session(node);
        session.set_field(&id, "v", Value::Int(8)).unwrap();
        session.prepare().unwrap()
    };
    let plan = fed.plan_rebalance_to(2).expect("plan");
    let report = fed.rebalance(plan).expect("rebalance");
    assert!(report.deferred.iter().any(|s| s.object == id));
    // The object is untouched on its old shard; the deferred steps are
    // retried directly once the lock clears.
    let deferred = report.deferred;
    fed.shard_mut(ShardId(2)).rollback(holder).unwrap();
    let report = fed
        .rebalance(RebalancePlan {
            target: fed.map().clone(),
            steps: deferred,
        })
        .expect("retry");
    assert_eq!(report.migrated, 1);
    let owner = fed.map().shard_of(&id);
    assert_eq!(read(&fed, owner, &id), Some(Value::Int(7)));
}
