//! The consolidated [`ClusterConfig`] API round-trips: any typed
//! configuration given to the builder is the configuration observed on
//! the running cluster (per-subsystem getters read back from the live
//! components, not from the config copy), runtime deltas applied via
//! [`Cluster::reconfigure`] land atomically with one `reconfigure`
//! event, and the two typed builder spellings (`with_config` and
//! `configure`) are behaviourally identical — byte-identical traces on
//! the same workload.

use dedisys_constraints::LookupMode;
use dedisys_core::{
    nodes, Cluster, ClusterBuilder, ClusterConfig, ConstraintEngine, DetectorKind, HistoryPolicy,
    JsonlExporter, MinorityWriteHandling, NegotiationTiming, PrimaryPartitionPolicy,
    ReconcileStrategy, RingRecorder, ValidationParallelism,
};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{Error, NodeId, ObjectId, SatisfactionDegree, SimDuration, Value};
use proptest::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex};

fn app() -> AppDescriptor {
    AppDescriptor::new("config-roundtrip")
        .with_class(ClassDescriptor::new("Item").with_field("v", Value::Int(0)))
}

fn arb_parallelism() -> impl Strategy<Value = ValidationParallelism> {
    prop_oneof![
        Just(ValidationParallelism::Serial),
        (2usize..=8).prop_map(ValidationParallelism::Threads),
    ]
}

fn arb_engine() -> impl Strategy<Value = ConstraintEngine> {
    prop_oneof![
        Just(ConstraintEngine::Interpreted),
        Just(ConstraintEngine::Compiled),
    ]
}

fn arb_lookup() -> impl Strategy<Value = LookupMode> {
    prop_oneof![Just(LookupMode::Cached), Just(LookupMode::Scan)]
}

fn arb_timing() -> impl Strategy<Value = NegotiationTiming> {
    prop_oneof![
        Just(NegotiationTiming::Immediate),
        Just(NegotiationTiming::Deferred),
    ]
}

fn arb_degree() -> impl Strategy<Value = SatisfactionDegree> {
    prop_oneof![
        Just(SatisfactionDegree::Satisfied),
        Just(SatisfactionDegree::PossiblySatisfied),
        Just(SatisfactionDegree::PossiblyViolated),
        Just(SatisfactionDegree::Uncheckable),
    ]
}

fn arb_threat_policy() -> impl Strategy<Value = HistoryPolicy> {
    prop_oneof![
        Just(HistoryPolicy::IdenticalOnce),
        Just(HistoryPolicy::FullHistory),
        Just(HistoryPolicy::Reduced),
    ]
}

fn arb_reconcile() -> impl Strategy<Value = ReconcileStrategy> {
    prop_oneof![
        Just(ReconcileStrategy::FullScan),
        Just(ReconcileStrategy::Incremental),
    ]
}

fn arb_primary_policy() -> impl Strategy<Value = PrimaryPartitionPolicy> {
    prop_oneof![
        Just(PrimaryPartitionPolicy::AlwaysPrimary),
        Just(PrimaryPartitionPolicy::MajorityNodes),
        Just(PrimaryPartitionPolicy::WeightedQuorum),
    ]
}

fn arb_minority() -> impl Strategy<Value = MinorityWriteHandling> {
    prop_oneof![
        Just(MinorityWriteHandling::Degrade),
        Just(MinorityWriteHandling::Refuse),
    ]
}

fn arb_detector() -> impl Strategy<Value = (bool, DetectorKind, u64)> {
    (
        any::<bool>(),
        prop_oneof![
            Just(DetectorKind::FixedTimeout),
            Just(DetectorKind::Adaptive)
        ],
        0u64..1_000,
    )
}

fn arb_deadline() -> impl Strategy<Value = Option<SimDuration>> {
    prop_oneof![
        Just(None),
        (1u64..=2_000).prop_map(|ms| Some(SimDuration::from_millis(ms))),
    ]
}

/// One strategy per config section, combined as a nested tuple (flat
/// tuples of strategies stop at 12 fields).
fn arb_config() -> impl Strategy<Value = ClusterConfig> {
    let validation = (
        arb_parallelism(),
        arb_engine(),
        any::<bool>(),
        arb_lookup(),
        arb_timing(),
        arb_degree(),
    );
    let membership = (arb_detector(), arb_primary_policy(), arb_minority());
    let durability = (
        arb_threat_policy(),
        arb_reconcile(),
        0usize..64,
        any::<bool>(),
    );
    let plane = (
        1u32..=64,
        1u64..=10_000,
        1u32..=64,
        any::<bool>(),
        arb_deadline(),
    );
    (validation, membership, durability, plane).prop_map(|(v, m, d, p)| {
        let mut config = ClusterConfig::default();
        let (parallelism, engine, verdict_cache, lookup_mode, timing, degree) = v;
        config.validation.parallelism = parallelism;
        config.validation.engine = engine;
        config.validation.verdict_cache = verdict_cache;
        config.validation.lookup_mode = lookup_mode;
        config.validation.negotiation_timing = timing;
        config.validation.app_default_min_degree = degree;
        let ((enabled, kind, seed), primary_policy, minority_writes) = m;
        config.membership.detector_enabled = enabled;
        config.membership.detector = kind;
        config.membership.seed = seed;
        config.membership.primary_policy = primary_policy;
        config.membership.minority_writes = minority_writes;
        let (threat_policy, reconcile_strategy, compaction_threshold, reduced) = d;
        config.durability.threat_policy = threat_policy;
        config.durability.reconcile_strategy = reconcile_strategy;
        config.durability.compaction_threshold = compaction_threshold;
        config.durability.reduced_replica_history = reduced;
        let (queue_capacity, refill_per_second, burst, shed, deadline_normal) = p;
        config.plane.queue_capacity = queue_capacity;
        config.plane.refill_per_second = refill_per_second;
        config.plane.burst = burst;
        config.plane.shed_background_when_degraded = shed;
        config.plane.deadline_normal = deadline_normal;
        config
    })
}

/// What the builder is documented to normalize before the config
/// reaches the running cluster.
fn clamped(mut config: ClusterConfig) -> ClusterConfig {
    config.durability.compaction_threshold = config.durability.compaction_threshold.max(1);
    config
}

/// Asserts that every per-subsystem getter of a *running* cluster
/// reports the field the config promised — the getters read back from
/// the CCM, the replication manager, the threat store and the
/// membership pipeline where those exist.
fn assert_observed_matches(cluster: &Cluster, expected: &ClusterConfig) {
    assert_eq!(cluster.config(), expected);
    assert_eq!(
        cluster.validation_parallelism(),
        expected.validation.parallelism
    );
    assert_eq!(cluster.constraint_engine(), expected.validation.engine);
    assert_eq!(
        cluster.verdict_cache_enabled(),
        expected.validation.verdict_cache
    );
    assert_eq!(
        cluster.negotiation_timing(),
        expected.validation.negotiation_timing
    );
    assert_eq!(
        cluster.app_default_min_degree(),
        expected.validation.app_default_min_degree
    );
    assert_eq!(
        cluster.reconcile_strategy(),
        expected.durability.reconcile_strategy
    );
    assert_eq!(
        cluster.reduced_replica_history(),
        expected.durability.reduced_replica_history
    );
    assert_eq!(
        cluster.threats().policy(),
        expected.durability.threat_policy
    );
    assert_eq!(cluster.primary_policy(), expected.membership.primary_policy);
    assert_eq!(
        cluster.minority_writes(),
        expected.membership.minority_writes
    );
    assert_eq!(
        cluster.detector_enabled(),
        expected.membership.detector_enabled
    );
    if expected.membership.detector_enabled {
        assert_eq!(cluster.detector_kind(), expected.membership.detector);
        assert_eq!(
            cluster.detector_config(),
            expected.membership.detector_config
        );
        assert_eq!(cluster.adaptive_config(), expected.membership.adaptive);
        assert_eq!(cluster.stabilizer_config(), expected.membership.stabilizer);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any typed config given to the builder is the config observed on
    /// the running cluster, including after a committed operation.
    #[test]
    fn config_round_trips_from_builder_to_running_cluster(config in arb_config()) {
        let mut cluster = ClusterBuilder::new(3, app())
            .with_config(config)
            .build()
            .expect("build");
        // Exercise the cluster so "observed" means a *running* system,
        // not a freshly wired one. The full topology is primary under
        // every policy, so the write is admitted regardless of knobs.
        let id = ObjectId::new("Item", "i0");
        cluster
            .run_tx(NodeId(0), move |c, tx| {
                c.create(NodeId(0), tx, EntityState::for_class(c.app(), &id)?)
            })
            .expect("seed write");
        assert_observed_matches(&cluster, &clamped(config));
    }

    /// Runtime deltas via `reconfigure` land in the live subsystems,
    /// return exactly the changed dotted paths, and emit one
    /// `reconfigure` event (none when nothing changed).
    #[test]
    fn reconfigure_applies_and_reports_runtime_deltas(
        timing in arb_timing(),
        degree in arb_degree(),
        cache in any::<bool>(),
        strategy in arb_reconcile(),
        reduced in any::<bool>(),
        burst in 1u32..=64,
    ) {
        let mut cluster = ClusterBuilder::new(3, app()).build().expect("build");
        let ring = RingRecorder::new(256);
        cluster.telemetry().attach(Box::new(ring.clone()));
        let changed = cluster
            .reconfigure(|c| {
                c.validation.negotiation_timing = timing;
                c.validation.app_default_min_degree = degree;
                c.validation.verdict_cache = cache;
                c.durability.reconcile_strategy = strategy;
                c.durability.reduced_replica_history = reduced;
                c.plane.burst = burst;
            })
            .expect("runtime-only delta");
        prop_assert_eq!(cluster.negotiation_timing(), timing);
        prop_assert_eq!(cluster.app_default_min_degree(), degree);
        prop_assert_eq!(cluster.verdict_cache_enabled(), cache);
        prop_assert_eq!(cluster.reconcile_strategy(), strategy);
        prop_assert_eq!(cluster.reduced_replica_history(), reduced);
        prop_assert_eq!(cluster.config().plane.burst, burst);
        // The returned paths are exactly the fields that now differ
        // from the default the cluster started with.
        let expected_paths = ClusterConfig::default().diff(cluster.config());
        prop_assert_eq!(&changed, &expected_paths);
        let events = ring.records_of_kind("reconfigure");
        prop_assert_eq!(events.len(), usize::from(!changed.is_empty()));
        // Applying the same delta again is a no-op: no paths, no event.
        let again = cluster
            .reconfigure(|c| {
                c.validation.negotiation_timing = timing;
                c.plane.burst = burst;
            })
            .expect("idempotent delta");
        prop_assert!(again.is_empty());
        prop_assert_eq!(ring.records_of_kind("reconfigure").len(), events.len());
    }
}

#[test]
fn reconfigure_refuses_build_time_fields_atomically() {
    let mut cluster = ClusterBuilder::new(2, app()).build().expect("build");
    let before = *cluster.config();
    let err = cluster
        .reconfigure(|c| {
            c.membership.seed = 9;
            // Bundled runtime-legal change must NOT be applied either.
            c.plane.burst = 1;
        })
        .expect_err("membership.seed is build-time only");
    assert!(matches!(err, Error::Config(_)));
    assert_eq!(*cluster.config(), before, "rejected delta applies nothing");
}

/// The knob set both builder spellings below configure — one
/// representative knob per config section.
fn exercised(config: &mut ClusterConfig) {
    config.validation.lookup_mode = LookupMode::Scan;
    config.validation.parallelism = ValidationParallelism::Threads(2);
    config.validation.engine = ConstraintEngine::Compiled;
    config.validation.verdict_cache = true;
    config.validation.negotiation_timing = NegotiationTiming::Deferred;
    config.validation.app_default_min_degree = SatisfactionDegree::PossiblySatisfied;
    config.membership.primary_policy = PrimaryPartitionPolicy::MajorityNodes;
    config.membership.minority_writes = MinorityWriteHandling::Refuse;
    config.durability.threat_policy = HistoryPolicy::Reduced;
    config.durability.reconcile_strategy = ReconcileStrategy::FullScan;
    config.durability.compaction_threshold = 4;
    config.durability.reduced_replica_history = true;
}

/// Spelling one: hand the builder a ready-made config value.
fn valued_builder() -> ClusterBuilder {
    let mut config = ClusterConfig::default();
    exercised(&mut config);
    ClusterBuilder::new(3, app()).with_config(config)
}

/// Spelling two: mutate the builder's config in place.
fn mutated_builder() -> ClusterBuilder {
    ClusterBuilder::new(3, app()).configure(exercised)
}

#[test]
fn both_typed_spellings_build_the_identical_config() {
    let valued = valued_builder().build().expect("with_config build");
    let mutated = mutated_builder().build().expect("configure build");
    assert_eq!(valued.config(), mutated.config());
    let mut expected = ClusterConfig::default();
    exercised(&mut expected);
    assert_observed_matches(&valued, &expected);
    assert_observed_matches(&mutated, &expected);
}

/// A `Write` sink into a shared buffer (see
/// `tests/engine_transparency.rs`).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One mixed workload — committed writes on both sides of a
/// partition/heal cycle, including a refused minority write — against
/// a traced cluster built by `make`. Returns the raw JSONL bytes plus
/// the serde-independent `(seq, at, kind)` stream.
fn traced_workload(make: fn() -> ClusterBuilder) -> (Vec<u8>, Vec<(u64, u64, &'static str)>) {
    let buf = SharedBuf::default();
    let mut cluster = make().build().expect("build");
    cluster
        .telemetry()
        .attach(Box::new(JsonlExporter::new(Box::new(buf.clone()))));
    let ring = RingRecorder::new(8192);
    cluster.telemetry().attach(Box::new(ring.clone()));
    for i in 0..3 {
        let id = ObjectId::new("Item", format!("i{i}"));
        cluster
            .run_tx(NodeId(0), move |c, tx| {
                c.create(NodeId(0), tx, EntityState::for_class(c.app(), &id)?)
            })
            .expect("seed item");
    }
    for round in 0i64..6 {
        let node = NodeId((round % 3) as u32);
        let id = ObjectId::new("Item", format!("i{}", round % 3));
        let mut session = cluster.session(node);
        let write = session
            .set_field(&id, "v", Value::Int(round))
            .and_then(|()| session.commit());
        // Round 2 hits node 2 while it is alone under MajorityNodes +
        // Refuse; both spellings must refuse identically.
        assert_eq!(write.is_err(), round == 2, "round {round}");
        if round == 1 {
            cluster
                .partition(&[nodes![0, 1], nodes![2]])
                .expect("split");
        }
        if round == 3 {
            cluster.heal();
        }
        cluster.clock().advance(SimDuration::from_millis(20));
    }
    let stream: Vec<(u64, u64, &'static str)> = ring
        .records()
        .iter()
        .map(|r| (r.seq, r.at.as_nanos(), r.event.kind()))
        .collect();
    drop(cluster);
    let bytes = buf.0.lock().unwrap().clone();
    (bytes, stream)
}

#[test]
fn both_typed_spellings_trace_byte_identically() {
    let (valued_bytes, valued_stream) = traced_workload(valued_builder);
    let (mutated_bytes, mutated_stream) = traced_workload(mutated_builder);
    assert!(!valued_bytes.is_empty());
    assert_eq!(
        valued_bytes, mutated_bytes,
        "with_config- and configure-built clusters must write identical JSONL"
    );
    assert_eq!(
        valued_stream, mutated_stream,
        "with_config- and configure-built clusters must emit identical events"
    );
}
