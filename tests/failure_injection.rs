//! Failure-injection integration tests: node crashes, cascading
//! partitions, rollback-based reconciliation, threat-history policies
//! and crash recovery of the persistence substrate.

use dedisys_constraints::{
    expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
};
use dedisys_core::nodes;
use dedisys_core::{
    ClusterBuilder, DeferAll, DetectorKind, HighestVersionWins, HistoryPolicy,
    ReconcileInstructions, StabilizerConfig,
};
use dedisys_net::SimClock;
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_store::{Persistence, StoreCosts};
use dedisys_types::{NodeId, ObjectId, SatisfactionDegree, SimDuration, SystemMode, Value};
use std::sync::Arc;

fn app() -> AppDescriptor {
    AppDescriptor::new("inv").with_class(
        ClassDescriptor::new("Counter")
            .with_field("n", Value::Int(0))
            .with_field("max", Value::Int(100)),
    )
}

fn bounded_constraint() -> RegisteredConstraint {
    RegisteredConstraint::new(
        ConstraintMeta::new("Bounded").tradeable(SatisfactionDegree::PossiblySatisfied),
        Arc::new(ExprConstraint::parse("self.n <= self.max").unwrap()),
    )
    .context_class("Counter")
    .affects("Counter", "setN", ContextPreparation::CalledObject)
}

fn seed(cluster: &mut dedisys_core::Cluster) -> ObjectId {
    let id = ObjectId::new("Counter", "c1");
    let node = NodeId(0);
    let e = id.clone();
    cluster
        .run_tx(node, move |c, tx| {
            c.create(node, tx, EntityState::for_class(c.app(), &e)?)
        })
        .unwrap();
    id
}

#[test]
fn node_crash_is_a_singleton_partition_and_recovery_reconciles() {
    let mut cluster = ClusterBuilder::new(3, app())
        .constraint(bounded_constraint())
        .build()
        .unwrap();
    let id = seed(&mut cluster);
    // Node 2 crashes (pause-crash): the survivors keep operating.
    cluster.isolate(NodeId(2)).unwrap();
    cluster
        .run_tx(NodeId(0), |c, tx| {
            c.set_field(NodeId(0), tx, &id, "n", Value::Int(5))
        })
        .unwrap();
    assert_eq!(
        cluster.entity_on(NodeId(2), &id).unwrap().field("n"),
        &Value::Int(0),
        "crashed node missed the update"
    );
    // Recovery: the node re-joins and is brought up to date.
    cluster.heal();
    cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    assert_eq!(
        cluster.entity_on(NodeId(2), &id).unwrap().field("n"),
        &Value::Int(5)
    );
}

#[test]
fn cascading_partitions_merge_step_by_step() {
    let mut cluster = ClusterBuilder::new(4, app())
        .constraint(bounded_constraint())
        .build()
        .unwrap();
    let id = seed(&mut cluster);
    // First a 2/2 split, then one side splits again.
    cluster.partition(&[nodes![0, 1], nodes![2, 3]]).unwrap();
    cluster
        .run_tx(NodeId(2), |c, tx| {
            c.set_field(NodeId(2), tx, &id, "n", Value::Int(7))
        })
        .unwrap();
    cluster
        .partition(&[nodes![0], nodes![1], nodes![2, 3]])
        .unwrap();
    cluster
        .run_tx(NodeId(0), |c, tx| {
            c.set_field(NodeId(0), tx, &id, "n", Value::Int(3))
        })
        .unwrap();
    assert_eq!(cluster.topology().partitions().len(), 3);
    // Full heal and reconcile: highest version wins deterministically.
    cluster.heal();
    let summary = cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    assert_eq!(summary.replica.conflicts.len(), 1);
    let reference = cluster
        .entity_on(NodeId(0), &id)
        .unwrap()
        .field("n")
        .clone();
    for n in 1..4 {
        assert_eq!(
            cluster.entity_on(NodeId(n), &id).unwrap().field("n"),
            &reference
        );
    }
}

#[test]
fn rollback_based_reconciliation_restores_a_consistent_state() {
    let mut cluster = ClusterBuilder::new(2, app())
        .constraint(bounded_constraint())
        .default_instructions(ReconcileInstructions {
            allow_rollback: true,
            notify_on_replica_conflict: false,
        })
        .build()
        .unwrap();
    let id = seed(&mut cluster);
    cluster
        .run_tx(NodeId(0), |c, tx| {
            c.set_field(NodeId(0), tx, &id, "n", Value::Int(40))
        })
        .unwrap();
    cluster.partition(&[nodes![0], nodes![1]]).unwrap();
    // Each side adds 35: individually fine (75 ≤ 100), merged by an
    // additive handler it overflows (110 > 100).
    cluster
        .run_tx(NodeId(0), |c, tx| {
            c.set_field(NodeId(0), tx, &id, "n", Value::Int(75))
        })
        .unwrap();
    cluster
        .run_tx(NodeId(1), |c, tx| {
            c.set_field(NodeId(1), tx, &id, "n", Value::Int(75))
        })
        .unwrap();
    cluster.heal();
    let mut additive = |conflict: &dedisys_core::ReplicaConflict| {
        let mut merged = conflict.candidates[0].1.clone().unwrap();
        merged.set_field("n", Value::Int(110), dedisys_types::SimTime::ZERO);
        Some(merged)
    };
    let summary = cluster.reconcile(&mut additive, &mut DeferAll);
    assert_eq!(summary.constraints.violations, 1);
    // The rollback search found a historical degraded-mode state (75)
    // that satisfies the constraint — availability retrospectively
    // reduced, but no handler needed.
    assert_eq!(summary.constraints.resolved_by_rollback, 1);
    assert_eq!(summary.constraints.deferred, 0);
    let n = cluster
        .entity_on(NodeId(0), &id)
        .unwrap()
        .field("n")
        .as_int()
        .unwrap();
    assert!(n <= 100, "rolled back to a consistent state, got {n}");
    assert!(cluster.threats().is_empty());
}

/// Regression — violation accounting when the handler exhausts its
/// retries. A handler may claim immediate success without actually
/// repairing the state; after three failed re-validations the CCMgr
/// gives up. Such violations used to vanish from every counter —
/// they must be accounted as deferred so that
/// `violations == resolved_by_rollback + resolved_by_handler + deferred`.
#[test]
fn exhausted_handler_retries_are_accounted_as_deferred() {
    let mut cluster = ClusterBuilder::new(2, app())
        .constraint(bounded_constraint())
        .build()
        .unwrap();
    let id = seed(&mut cluster);
    cluster.partition(&[nodes![0], nodes![1]]).unwrap();
    for node in [NodeId(0), NodeId(1)] {
        let id = id.clone();
        cluster
            .run_tx(node, move |c, tx| {
                c.set_field(node, tx, &id, "n", Value::Int(75))
            })
            .unwrap();
    }
    cluster.heal();
    let mut additive = |conflict: &dedisys_core::ReplicaConflict| {
        let mut merged = conflict.candidates[0].1.clone().unwrap();
        merged.set_field("n", Value::Int(110), dedisys_types::SimTime::ZERO);
        Some(merged)
    };
    // The handler lies: it reports the violation as resolved but never
    // touches the state, so every re-validation still sees 110 > 100.
    let mut calls = 0usize;
    let mut lying = |_v: &dedisys_core::ViolationReport, _ops: &mut dedisys_core::ReconOps<'_>| {
        calls += 1;
        true
    };
    let summary = cluster.reconcile(&mut additive, &mut lying);
    assert_eq!(calls, 3, "bounded retries (§4.4)");
    let c = &summary.constraints;
    assert_eq!(c.violations, 1);
    assert_eq!(c.resolved_by_handler, 0);
    assert_eq!(c.resolved_by_rollback, 0);
    assert_eq!(
        c.deferred, 1,
        "exhausted retries must surface as deferred, not disappear"
    );
    assert_eq!(
        c.violations,
        c.resolved_by_rollback + c.resolved_by_handler + c.deferred
    );
    // The unresolved threat is retained for later reconciliation runs.
    assert!(!cluster.threats().is_empty());
}

#[test]
fn full_history_policy_stores_every_occurrence() {
    for (policy, expected_records) in [
        (HistoryPolicy::IdenticalOnce, 1),
        (HistoryPolicy::FullHistory, 5),
    ] {
        let mut cluster = ClusterBuilder::new(2, app())
            .constraint(bounded_constraint())
            .configure(|c| c.durability.threat_policy = policy)
            .build()
            .unwrap();
        let id = seed(&mut cluster);
        cluster.partition(&[nodes![0], nodes![1]]).unwrap();
        for i in 1..=5 {
            cluster
                .run_tx(NodeId(0), |c, tx| {
                    c.set_field(NodeId(0), tx, &id, "n", Value::Int(i))
                })
                .unwrap();
        }
        assert_eq!(cluster.threats().len(), expected_records, "{policy:?}");
        assert_eq!(cluster.threats().identities().len(), 1, "{policy:?}");
    }
}

#[test]
fn async_constraints_skip_degraded_validation() {
    let mut constraint = bounded_constraint();
    constraint.meta.kind = dedisys_constraints::ConstraintKind::AsyncInvariant;
    let mut cluster = ClusterBuilder::new(2, app())
        .constraint(constraint)
        .build()
        .unwrap();
    let id = seed(&mut cluster);
    let validations_before = cluster.stats().ccm.validations;
    cluster.partition(&[nodes![0], nodes![1]]).unwrap();
    cluster
        .run_tx(NodeId(0), |c, tx| {
            c.set_field(NodeId(0), tx, &id, "n", Value::Int(5))
        })
        .unwrap();
    // No validation, no negotiation — the threat was recorded directly.
    assert_eq!(cluster.stats().ccm.validations, validations_before);
    assert_eq!(cluster.stats().ccm.async_shortcuts, 1);
    assert_eq!(cluster.threats().len(), 1);
    // Reconciliation evaluates it for the first time.
    cluster.heal();
    let summary = cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    assert_eq!(summary.constraints.satisfied_removed, 1);
}

#[test]
fn wal_recovery_restores_store_state_after_crash() {
    let clock = SimClock::new();
    let mut persistence = Persistence::new(clock, StoreCosts::default());
    for i in 0..50 {
        persistence.put("threats", &format!("t{i}"), format!("{{\"id\":{i}}}"));
    }
    for i in 0..25 {
        persistence.delete("threats", &format!("t{i}"));
    }
    let before: Vec<(String, String)> = persistence.scan("threats");
    let report = persistence.recover_from_wal();
    assert_eq!(report.replayed, 75);
    assert_eq!(report.truncated, 0);
    assert_eq!(persistence.scan("threats"), before);
    assert_eq!(persistence.store().table_len("threats"), 25);
}

/// The torn tail of an interrupted write is dropped, not replayed: the
/// checksummed WAL catches the half-written entry and recovery keeps
/// only the intact prefix.
#[test]
fn wal_recovery_truncates_a_torn_tail() {
    let clock = SimClock::new();
    let mut persistence = Persistence::new(clock, StoreCosts::default());
    for i in 0..10 {
        persistence.put("threats", &format!("t{i}"), format!("{{\"id\":{i}}}"));
    }
    assert_eq!(persistence.corrupt_wal_tail(3), 3);
    let report = persistence.recover_from_wal();
    assert_eq!(report.replayed, 7);
    assert_eq!(report.truncated, 3);
    assert_eq!(persistence.store().table_len("threats"), 7);
    assert!(persistence.store().get("threats", "t6").is_some());
    assert!(persistence.store().get("threats", "t7").is_none());
}

/// The scripted-partition lifecycle of
/// `node_crash_is_a_singleton_partition_and_recovery_reconciles` run
/// once more the way a real deployment enters degraded mode: links are
/// physically cut, the φ-accrual detector notices, the stabilized view
/// is installed with `cause: detector`, and healing the links converges
/// the pipeline back to one healthy view with zero standing suspicions.
#[test]
fn detector_driven_partition_matches_scripted_behaviour() {
    // Hysteresis on, but suppression out of reach: one clean cut/heal
    // cycle is not a flap and must not pin any node.
    let stabilizer = StabilizerConfig {
        suppress_milli: 10_000,
        reuse_milli: 5_000,
        ..StabilizerConfig::default()
    };
    let mut cluster = ClusterBuilder::new(3, app())
        .constraint(bounded_constraint())
        .configure(|c| {
            c.membership.detector_enabled = true;
            c.membership.detector = DetectorKind::Adaptive;
            c.membership.stabilizer = stabilizer;
            c.membership.seed = 7;
        })
        .build()
        .unwrap();
    let id = seed(&mut cluster);

    // Physically cut node 2 off — the cluster is NOT told.
    cluster.drop_links(&[nodes![0, 1], nodes![2]]).unwrap();
    assert_eq!(
        cluster.mode(),
        SystemMode::Healthy,
        "nothing detected yet without running the pipeline"
    );
    let installed = cluster.run_detector_for(SimDuration::from_secs(2));
    assert!(installed >= 1, "detector installed the degraded view");
    assert_eq!(cluster.mode(), SystemMode::Degraded);
    assert_eq!(cluster.topology().partitions().len(), 2);

    // Majority-side write records a threat, exactly as when scripted.
    cluster
        .run_tx(NodeId(0), |c, tx| {
            c.set_field(NodeId(0), tx, &id, "n", Value::Int(5))
        })
        .unwrap();
    assert!(!cluster.threats().is_empty());

    // Physical repair: detection clears suspicion and re-installs the
    // full view; degraded residue sends the system to reconciliation.
    cluster.heal_links().unwrap();
    cluster.run_detector_for(SimDuration::from_secs(4));
    assert_eq!(cluster.standing_suspicions(), 0, "healed + quiescent");
    assert_eq!(cluster.mode(), SystemMode::Reconciliation);

    cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    assert_eq!(cluster.mode(), SystemMode::Healthy);
    assert_eq!(
        cluster.entity_on(NodeId(2), &id).unwrap().field("n"),
        &Value::Int(5),
        "late node caught up after detector-driven heal"
    );
}

#[test]
fn lossy_network_group_communication_masks_failures() {
    // End-to-end over the gc substrate: 25% loss, everything delivered.
    let mut sim: dedisys_gc::GroupSim<u32> = dedisys_gc::GroupSim::new(4, 250);
    for i in 0..30 {
        sim.multicast(NodeId(0), i);
    }
    sim.run_to_quiescence();
    for n in 1..4 {
        assert_eq!(sim.delivered(NodeId(n)), &(0..30).collect::<Vec<_>>());
    }
}
