//! Robustness integration tests: the seeded chaos engine, the node
//! crash/restart lifecycle, 2PC in-doubt recovery (presumed abort),
//! §5.5.1 threat re-activation, and the typed topology error paths.

use dedisys_chaos::{ChaosConfig, ChaosEngine, FaultPlan, FaultStep};
use dedisys_constraints::{
    expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
};
use dedisys_core::{
    Cluster, ClusterBuilder, CostModel, DeferAll, HighestVersionWins, RingRecorder,
};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{Error, NodeId, ObjectId, SatisfactionDegree, TxId, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn app() -> AppDescriptor {
    AppDescriptor::new("robust").with_class(
        ClassDescriptor::new("Counter")
            .with_field("n", Value::Int(0))
            .with_field("max", Value::Int(100)),
    )
}

fn bounded_constraint() -> RegisteredConstraint {
    RegisteredConstraint::new(
        ConstraintMeta::new("Bounded").tradeable(SatisfactionDegree::PossiblySatisfied),
        Arc::new(ExprConstraint::parse("self.n <= self.max").unwrap()),
    )
    .context_class("Counter")
    .affects("Counter", "setN", ContextPreparation::CalledObject)
}

fn cluster(nodes: u32) -> Cluster {
    ClusterBuilder::new(nodes, app()).build().unwrap()
}

fn seed_object(cluster: &mut Cluster) -> ObjectId {
    let id = ObjectId::new("Counter", "c1");
    let node = NodeId(0);
    let e = id.clone();
    cluster
        .run_tx(node, move |c, tx| {
            c.create(node, tx, EntityState::for_class(c.app(), &e)?)
        })
        .unwrap();
    id
}

/// Begins a transaction on `node`, updates the object, and drives it
/// through the prepare phase, leaving a prepared (hanging) 2PC
/// coordinator — the setup of every in-doubt scenario.
fn prepare_hanging_tx(cluster: &mut Cluster, node: NodeId, id: &ObjectId) -> TxId {
    let mut session = cluster.session(node);
    session.set_field(id, "n", Value::Int(7)).unwrap();
    session.prepare().unwrap()
}

// ---------------------------------------------------------------------
// 2PC in-doubt recovery
// ---------------------------------------------------------------------

/// Regression — a coordinator crash between prepare and commit used to
/// leave the transaction's locks held forever. Now the transaction
/// parks in the in-doubt registry (blocking both commit and rollback),
/// and the presumed-abort timeout releases everything.
#[test]
fn crash_during_prepare_parks_in_doubt_and_presumed_abort_releases_locks() {
    let mut c = cluster(3);
    let id = seed_object(&mut c);
    let tx = prepare_hanging_tx(&mut c, NodeId(1), &id);
    assert_eq!(c.held_locks().len(), 1, "prepared tx holds its lock");

    c.crash(NodeId(1)).unwrap();
    assert_eq!(c.in_doubt_count(), 1);
    assert!(c.tx_is_open(tx), "in-doubt stays open until resolution");
    assert_eq!(
        c.held_locks().len(),
        1,
        "in-doubt locks are retained, not leaked to nobody"
    );
    // The outcome is unknowable: neither commit nor rollback may run.
    assert!(matches!(c.commit(tx), Err(Error::TxInDoubt(t)) if t == tx));
    assert!(matches!(c.rollback(tx), Err(Error::TxInDoubt(t)) if t == tx));

    // Before the timeout nothing resolves…
    assert_eq!(c.resolve_in_doubt(), 0);
    // …after it, presumed abort drains the registry and the locks.
    c.clock().advance(CostModel::default().in_doubt_timeout);
    assert_eq!(c.resolve_in_doubt(), 1);
    assert_eq!(c.in_doubt_count(), 0);
    assert_eq!(c.open_tx_count(), 0, "no open transaction survives");
    assert!(c.held_locks().is_empty(), "lock leak after presumed abort");
    assert_eq!(c.in_doubt_resolved(), 1);

    // The object is writable again by the survivors.
    c.run_tx(NodeId(0), |c, tx| {
        c.set_field(NodeId(0), tx, &id, "n", Value::Int(3))
    })
    .unwrap();
    assert_eq!(
        c.entity_on(NodeId(0), &id).unwrap().field("n"),
        &Value::Int(3)
    );
}

/// The deadline path of `resolve_in_doubt` announces itself: each
/// transaction resolved by timeout emits one dedicated
/// `in_doubt_timeout` event (naming the dead coordinator and how
/// overdue the deadline was) *before* its presumed-abort
/// `two_pc_resolved`.
#[test]
fn deadline_resolution_emits_a_dedicated_in_doubt_timeout_event() {
    let mut c = cluster(3);
    let ring = RingRecorder::new(1024);
    c.telemetry().attach(Box::new(ring.clone()));
    let id = seed_object(&mut c);
    prepare_hanging_tx(&mut c, NodeId(1), &id);
    c.crash(NodeId(1)).unwrap();

    // Resolving before the deadline emits nothing.
    assert_eq!(c.resolve_in_doubt(), 0);
    assert!(ring.records_of_kind("in_doubt_timeout").is_empty());

    let overdue = CostModel::default().in_doubt_timeout * 2;
    c.clock().advance(overdue);
    assert_eq!(c.resolve_in_doubt(), 1);
    let timeouts = ring.records_of_kind("in_doubt_timeout");
    assert_eq!(timeouts.len(), 1, "one timeout event per resolved tx");
    match &timeouts[0].event {
        dedisys_core::TraceEvent::InDoubtTimeout {
            coordinator,
            overdue_ns,
            ..
        } => {
            assert_eq!(*coordinator, NodeId(1), "names the dead coordinator");
            assert!(*overdue_ns > 0, "deadline was actually overdue");
        }
        other => panic!("wrong event payload: {other:?}"),
    }
    let resolved = ring.records_of_kind("two_pc_resolved");
    assert_eq!(resolved.len(), 1);
    assert!(
        timeouts[0].seq < resolved[0].seq,
        "timeout announces before the resolution"
    );
    // Restart-path resolution (no deadline involved) stays silent.
    assert_eq!(c.resolve_in_doubt(), 0);
    assert_eq!(ring.records_of_kind("in_doubt_timeout").len(), 1);
}

/// Coordinator restart resolves its in-doubt transactions immediately
/// (no commit record survived the crash ⇒ presumed abort), and the
/// journal replay restores the node's committed state.
#[test]
fn coordinator_restart_presumes_abort_and_replays_journal() {
    let mut c = cluster(3);
    let id = seed_object(&mut c);
    prepare_hanging_tx(&mut c, NodeId(1), &id);

    c.crash(NodeId(1)).unwrap();
    assert!(c.is_crashed(NodeId(1)));
    assert_eq!(c.in_doubt_count(), 1);
    assert!(
        c.journal_len_on(NodeId(1)) > 0,
        "journal survives the crash"
    );

    c.restart(NodeId(1)).unwrap();
    assert!(!c.is_crashed(NodeId(1)));
    assert_eq!(c.in_doubt_count(), 0, "restart resolves own in-doubt txs");
    assert!(c.held_locks().is_empty());
    assert_eq!(c.in_doubt_resolved(), 1);
    // Journal replay restored the committed object; the prepared (never
    // committed) update is gone.
    assert_eq!(
        c.entity_on(NodeId(1), &id).unwrap().field("n"),
        &Value::Int(0),
        "uncommitted update must not survive presumed abort"
    );
    assert!(c.topology().is_healthy(), "restarted node rejoined via GMS");
}

// ---------------------------------------------------------------------
// §5.5.1 — threat records survive a middleware crash
// ---------------------------------------------------------------------

#[test]
fn threat_records_are_reactivated_after_crash_and_restart() {
    let mut c = ClusterBuilder::new(3, app())
        .constraint(bounded_constraint())
        .build()
        .unwrap();
    let id = seed_object(&mut c);
    // A degraded write records a consistency threat.
    c.partition(&[vec![NodeId(0)], vec![NodeId(1), NodeId(2)]])
        .unwrap();
    c.run_tx(NodeId(0), |c, tx| {
        c.set_field(NodeId(0), tx, &id, "n", Value::Int(9))
    })
    .unwrap();
    let before = c.threats().len();
    assert!(before > 0, "degraded write should raise a threat");

    c.heal();
    c.crash(NodeId(2)).unwrap();
    c.restart(NodeId(2)).unwrap();
    assert_eq!(
        c.threats().len(),
        before,
        "threats must be re-activated from the WAL after restart (§5.5.1)"
    );
    // And reconciliation still converges afterwards.
    c.reconcile(&mut HighestVersionWins, &mut DeferAll);
    assert!(!c.needs_reconciliation());
}

// ---------------------------------------------------------------------
// Typed topology / lifecycle error paths
// ---------------------------------------------------------------------

#[test]
fn partition_rejects_unknown_duplicate_and_crashed_nodes() {
    let mut c = cluster(3);
    assert!(matches!(
        c.partition(&[vec![NodeId(0), NodeId(9)], vec![NodeId(1), NodeId(2)]]),
        Err(Error::UnknownNode(NodeId(9)))
    ));
    assert!(matches!(
        c.partition(&[vec![NodeId(0), NodeId(1)], vec![NodeId(1), NodeId(2)]]),
        Err(Error::DuplicateNode(NodeId(1)))
    ));
    c.crash(NodeId(2)).unwrap();
    assert!(matches!(
        c.partition(&[vec![NodeId(0)], vec![NodeId(1), NodeId(2)]]),
        Err(Error::NodeCrashed(NodeId(2)))
    ));
    // Valid splits still work, crashed node excluded.
    c.partition(&[vec![NodeId(0)], vec![NodeId(1)]]).unwrap();
}

#[test]
fn isolate_crash_and_restart_validate_their_node() {
    let mut c = cluster(2);
    assert!(matches!(
        c.isolate(NodeId(7)),
        Err(Error::UnknownNode(NodeId(7)))
    ));
    assert!(matches!(
        c.crash(NodeId(7)),
        Err(Error::UnknownNode(NodeId(7)))
    ));
    assert!(matches!(
        c.restart(NodeId(7)),
        Err(Error::UnknownNode(NodeId(7)))
    ));
    assert!(
        c.restart(NodeId(1)).is_err(),
        "restarting a live node is refused"
    );
    c.crash(NodeId(1)).unwrap();
    assert!(matches!(
        c.crash(NodeId(1)),
        Err(Error::NodeCrashed(NodeId(1)))
    ));
    c.restart(NodeId(1)).unwrap();
}

#[test]
fn crashed_node_rejects_requests_until_restarted() {
    let mut c = cluster(3);
    let id = seed_object(&mut c);
    c.crash(NodeId(2)).unwrap();
    let tx = c.session(NodeId(0)).detach();
    assert!(matches!(
        c.set_field(NodeId(2), tx, &id, "n", Value::Int(1)),
        Err(Error::NodeCrashed(NodeId(2)))
    ));
    c.rollback(tx).unwrap();
    c.restart(NodeId(2)).unwrap();
    c.run_tx(NodeId(2), |c, tx| {
        c.set_field(NodeId(2), tx, &id, "n", Value::Int(1))
    })
    .unwrap();
}

// ---------------------------------------------------------------------
// Explicit chaos schedule — crash mid-2PC inside a full engine run
// ---------------------------------------------------------------------

#[test]
fn explicit_schedule_with_mid_2pc_crashes_stays_clean() {
    let plan = FaultPlan::new()
        .at(25, FaultStep::Crash(NodeId(1)))
        .at(
            60,
            FaultStep::Partition(vec![vec![NodeId(0), NodeId(2)], vec![NodeId(3)]]),
        )
        .at(90, FaultStep::Restart(NodeId(1)))
        .at(110, FaultStep::Crash(NodeId(3)))
        .at(140, FaultStep::Heal)
        .at(
            170,
            FaultStep::WriteFaultWindow {
                node: NodeId(2),
                failures: 3,
            },
        );
    let report = ChaosEngine::new(ChaosConfig {
        nodes: 4,
        ops: 200,
        seed: 11,
        ..ChaosConfig::default()
    })
    .unwrap()
    .run_plan(&plan)
    .unwrap();
    assert!(report.clean(), "violations: {:?}", report.violations);
    assert!(report.ops_ok > 0);
}

// ---------------------------------------------------------------------
// Property tests — random schedules
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seeded random schedule leaves every invariant intact, from
    /// the per-step checks through final convergence.
    #[test]
    fn random_chaos_schedules_keep_all_invariants(
        seed in 0u64..10_000,
        nodes in 2u32..6,
        ops in 40u64..140,
        faults in 4usize..18,
    ) {
        let report = ChaosEngine::new(ChaosConfig {
            seed,
            nodes,
            ops,
            faults,
            ..ChaosConfig::default()
        })
        .unwrap()
        .run()
        .unwrap();
        prop_assert!(report.clean(), "seed {seed}: {:?}", report.violations);
        // After the final repair sequence the ledger balances exactly.
        let tx = &report.final_stats.tx;
        prop_assert_eq!(tx.begun, tx.committed + tx.rolled_back);
    }

    /// A chaos run is a pure function of its seed: equal seeds yield
    /// identical outcomes along every observable axis.
    #[test]
    fn chaos_runs_are_seed_deterministic(seed in 0u64..10_000) {
        let run = || {
            ChaosEngine::new(ChaosConfig {
                seed,
                ops: 80,
                faults: 10,
                ..ChaosConfig::default()
            })
            .unwrap()
            .run()
            .unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.ops_ok, b.ops_ok);
        prop_assert_eq!(a.ops_failed, b.ops_failed);
        prop_assert_eq!(a.faults_applied, b.faults_applied);
        prop_assert_eq!(a.in_doubt_resolved, b.in_doubt_resolved);
        prop_assert_eq!(a.final_stats.now_ns, b.final_stats.now_ns);
        prop_assert_eq!(a.final_stats.events_emitted, b.final_stats.events_emitted);
    }
}
