//! Verdict transparency of the constraint engines and the verdict
//! cache: across `{Interpreted, Compiled} × {cache on, off} ×
//! {Serial, Threads(n)}`, every observable *verdict* — satisfaction
//! degrees, threat identities, accepted/aborted operations, the
//! cluster/CCM/replication/transaction counters — is identical. Only
//! virtual time (checks get cheaper) and the cache's own telemetry may
//! differ, which is exactly what the fingerprint below excludes.
//!
//! Within one engine/cache configuration the stronger contract of
//! `tests/parallel_validation.rs` still holds: serial and pooled
//! evaluation produce byte-identical JSONL traces.

use dedisys_constraints::{
    expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
};
use dedisys_core::{
    nodes, ClusterBuilder, ConstraintEngine, DeferAll, HighestVersionWins, JsonlExporter,
    ValidationParallelism,
};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{ConstraintName, NodeId, ObjectId, SatisfactionDegree, Value};
use proptest::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` sink into a shared buffer, read back after the cluster
/// (and its exporter's `BufWriter`) is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("trace buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn app() -> AppDescriptor {
    AppDescriptor::new("engines").with_class(
        ClassDescriptor::new("Counter")
            .with_field("n", Value::Int(0))
            .with_field("max", Value::Int(100)),
    )
}

/// Twelve copies of the bounded constraint: every write validates a
/// multi-shard batch, every constraint sweep re-checks all objects
/// (the verdict cache's bread-and-butter), and tradeability makes
/// degraded runs produce threats and negotiation traffic too.
fn constraints() -> Vec<RegisteredConstraint> {
    (0..12)
        .map(|i| {
            RegisteredConstraint::new(
                ConstraintMeta::new(format!("Bounded-{i:02}"))
                    .tradeable(SatisfactionDegree::PossiblySatisfied),
                Arc::new(ExprConstraint::parse("self.n <= self.max").unwrap()),
            )
            .context_class("Counter")
            .affects("Counter", "setN", ContextPreparation::CalledObject)
        })
        .collect()
}

/// One step of a random workload schedule, decoded from raw tuples.
type Step = (u8, u32, usize, i64);

/// Everything a run may legitimately *not* vary across engine/cache
/// configurations: mode + cluster/CCM/replication/tx counters (virtual
/// time, the telemetry registry and the event count are excluded — the
/// cache's probe charges and hit/miss events differ by design), the
/// stored threat identities, and the violating-object lists returned
/// by every constraint sweep.
fn fingerprint(cluster: &dedisys_core::Cluster, sweeps: &[(String, Vec<ObjectId>)]) -> String {
    let stats = serde_json::to_value(cluster.stats()).unwrap();
    let verdicts = serde_json::json!({
        "mode": stats["mode"],
        "cluster": stats["cluster"],
        "ccm": stats["ccm"],
        "replication": stats["replication"],
        "tx": stats["tx"],
    });
    format!(
        "{verdicts}\nthreats: {:?}\nsweeps: {sweeps:?}",
        cluster.threats().identities()
    )
}

/// Runs `schedule` on a fresh cluster under the given configuration;
/// returns the verdict fingerprint and the raw JSONL trace.
fn run_schedule(
    engine: ConstraintEngine,
    cache: bool,
    parallelism: ValidationParallelism,
    schedule: &[Step],
) -> (String, Vec<u8>) {
    let buf = SharedBuf::default();
    let mut cluster = ClusterBuilder::new(3, app())
        .constraints(constraints())
        .configure(|c| {
            c.validation.engine = engine;
            c.validation.verdict_cache = cache;
            c.validation.parallelism = parallelism;
        })
        .build()
        .unwrap();
    cluster
        .telemetry()
        .attach(Box::new(JsonlExporter::new(Box::new(buf.clone()))));
    let objects: Vec<ObjectId> = (0..4)
        .map(|i| {
            let id = ObjectId::new("Counter", format!("c{i}"));
            let e = id.clone();
            cluster
                .run_tx(NodeId(0), move |c, tx| {
                    c.create(NodeId(0), tx, EntityState::for_class(c.app(), &e)?)
                })
                .unwrap();
            id
        })
        .collect();
    let mut sweeps: Vec<(String, Vec<ObjectId>)> = Vec::new();
    for &(action, node_raw, obj, value) in schedule {
        match action % 8 {
            0 => {
                let _ = cluster.partition(&[nodes![0], nodes![1], nodes![2]]);
            }
            1 => {
                cluster.heal();
                cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
            }
            2 => {
                // A §3.3 constraint sweep: disable + re-enable with the
                // mandated full re-check over every context object.
                // Repeated sweeps over unchanged objects are where the
                // verdict cache answers from memo — the violating list
                // must nevertheless be identical.
                let name = ConstraintName::from(format!("Bounded-{:02}", obj % 12));
                let _ = cluster.set_constraint_enabled(&name, false);
                if let Ok(violating) = cluster.enable_constraint_with_check(&name) {
                    sweeps.push((name.to_string(), violating));
                }
            }
            _ => {
                let node = NodeId(node_raw % 3);
                let id = objects[obj % objects.len()].clone();
                // Degraded or over-limit writes may abort; transparency
                // covers failures too.
                let _ = cluster.run_tx(node, move |c, tx| {
                    c.set_field(node, tx, &id, "n", Value::Int(value))
                });
            }
        }
    }
    cluster.heal();
    cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    let print = fingerprint(&cluster, &sweeps);
    drop(cluster);
    let trace = buf.0.lock().expect("trace buffer poisoned").clone();
    (print, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole contract: every engine/cache configuration yields
    /// the same verdict fingerprint as the interpreted, uncached
    /// baseline over random schedules of writes, partitions, heals,
    /// reconciliations and constraint sweeps.
    #[test]
    fn engines_and_cache_are_verdict_transparent(
        workers in 2usize..9,
        schedule in prop::collection::vec(
            (any::<u8>(), 0u32..3, 0usize..12, 0i64..200),
            1..24,
        ),
    ) {
        let (baseline, _) = run_schedule(
            ConstraintEngine::Interpreted,
            false,
            ValidationParallelism::Serial,
            &schedule,
        );
        let configs = [
            (ConstraintEngine::Interpreted, true, ValidationParallelism::Serial),
            (ConstraintEngine::Compiled, false, ValidationParallelism::Serial),
            (ConstraintEngine::Compiled, true, ValidationParallelism::Serial),
            (ConstraintEngine::Compiled, true, ValidationParallelism::Threads(workers)),
            (ConstraintEngine::Interpreted, true, ValidationParallelism::Threads(workers)),
        ];
        for (engine, cache, parallelism) in configs {
            let (print, _) = run_schedule(engine, cache, parallelism, &schedule);
            prop_assert_eq!(
                &baseline,
                &print,
                "verdicts diverged under {:?} cache={} {:?}",
                engine,
                cache,
                parallelism
            );
        }
    }

    /// Within one engine/cache configuration the parallelism contract
    /// stays byte-exact: serial and pooled runs of the compiled,
    /// cached engine produce identical JSONL traces (the cache probes
    /// run serially in the merge path, never on workers).
    #[test]
    fn cached_compiled_runs_are_parallelism_invariant(
        workers in 2usize..9,
        schedule in prop::collection::vec(
            (any::<u8>(), 0u32..3, 0usize..12, 0i64..200),
            1..24,
        ),
    ) {
        let (serial_print, serial_trace) = run_schedule(
            ConstraintEngine::Compiled,
            true,
            ValidationParallelism::Serial,
            &schedule,
        );
        let (par_print, par_trace) = run_schedule(
            ConstraintEngine::Compiled,
            true,
            ValidationParallelism::Threads(workers),
            &schedule,
        );
        prop_assert_eq!(serial_print, par_print);
        prop_assert!(!serial_trace.is_empty(), "trace captured");
        prop_assert_eq!(serial_trace, par_trace, "trace diverged at Threads({})", workers);
    }
}

/// Repeated sweeps over unchanged objects actually hit the cache, a
/// write invalidates exactly the touched object, and the cached run
/// spends less virtual time than the uncached one on the same
/// workload.
#[test]
fn verdict_cache_hits_invalidation_and_speedup() {
    let build = |cache: bool| {
        let mut cluster = ClusterBuilder::new(3, app())
            .constraints(constraints())
            .configure(|c| {
                c.validation.engine = ConstraintEngine::Compiled;
                c.validation.verdict_cache = cache;
            })
            .build()
            .unwrap();
        for i in 0..4 {
            let id = ObjectId::new("Counter", format!("c{i}"));
            cluster
                .run_tx(NodeId(0), move |c, tx| {
                    c.create(NodeId(0), tx, EntityState::for_class(c.app(), &id)?)
                })
                .unwrap();
        }
        cluster
    };
    let sweep = |cluster: &mut dedisys_core::Cluster| {
        for i in 0..12 {
            let name = ConstraintName::from(format!("Bounded-{i:02}"));
            cluster.set_constraint_enabled(&name, false).unwrap();
            cluster.enable_constraint_with_check(&name).unwrap();
        }
    };

    let mut cached = build(true);
    sweep(&mut cached); // cold: 12 constraints × 4 objects miss + fill
    let after_cold = cached.stats();
    let misses = after_cold.telemetry.counters["ccm.verdict_cache.miss"];
    assert_eq!(
        misses, 48,
        "cold sweep misses once per (constraint, object)"
    );
    assert!(cached.verdict_cache_len() > 0);
    sweep(&mut cached); // warm: answered from memo
    let after_warm = cached.stats();
    assert_eq!(
        after_warm.telemetry.counters["ccm.verdict_cache.hit"], 48,
        "warm sweep hits once per (constraint, object)"
    );
    assert_eq!(
        after_warm.telemetry.counters["ccm.verdict_cache.miss"], misses,
        "warm sweep adds no misses"
    );

    // A committed write invalidates the touched object's entries only.
    let id = ObjectId::new("Counter", "c0");
    let before = cached.verdict_cache_len();
    cached
        .run_tx(NodeId(0), {
            let id = id.clone();
            move |c, tx| c.set_field(NodeId(0), tx, &id, "n", Value::Int(5))
        })
        .unwrap();
    let after = cached.verdict_cache_len();
    assert!(after < before, "write invalidates the object's entries");
    assert!(after > 0, "other objects' entries survive");

    // Same workload without the cache: more virtual time, same verdicts.
    let mut uncached = build(false);
    sweep(&mut uncached);
    sweep(&mut uncached);
    assert_eq!(after_warm.ccm.validations, uncached.stats().ccm.validations);
    assert!(
        after_warm.now_ns < uncached.stats().now_ns,
        "cached sweeps must be cheaper in virtual time"
    );
}
